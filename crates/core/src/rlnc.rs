//! Random linear network coding over GF(2^8) (paper §6 made real).
//!
//! Where [`crate::coding`] models an *idealized* k-of-n threshold code,
//! this module implements the real thing: the content is a generation
//! of `k` source packets, every transmission is a random GF(2^8)-linear
//! combination of the packets its sender can already reproduce, and a
//! receiver reconstructs the generation as soon as it has collected `k`
//! linearly *independent* combinations. The coded analogue of a
//! [`TokenSet`](crate::TokenSet) is a [`CodedBasis`]: a rank-tracked
//! coefficient matrix with incremental Gaussian elimination, so
//! innovative-packet detection is a single reduction and decoding is
//! back-substitution once the rank reaches `k`.
//!
//! The payoff over replication is exactly the pathology the swarm
//! runtime measures as `duplicate_deliveries`: with uncoded blocks, a
//! lost or duplicated delivery wastes an arc-step *of a specific
//! block*, and the end-game degenerates into chasing the last missing
//! ones. With RLNC any innovative combination repairs any loss, so
//! duplicates can only arise from stale beliefs, never from two
//! senders racing the *same* block.
//!
//! # Determinism
//!
//! [`CodedBasis::random_packet`] draws one `u32` per stored basis row
//! (low byte used) in ascending pivot order, repeating only in the
//! all-zero case (probability `256^-rank`); given the same RNG state
//! and basis, the emitted packet is identical.

use crate::gf256;
use crate::{Instance, Token};
use ocd_graph::{DiGraph, NodeId};
use rand::RngCore;

/// One coded transmission: a coefficient vector over the generation and
/// the correspondingly mixed payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedPacket {
    /// `coeffs[i]` multiplies source packet `i`; length is the
    /// generation size `k`.
    pub coeffs: Vec<u8>,
    /// The mixed payload, `sum_i coeffs[i] · payload_i`.
    pub payload: Vec<u8>,
}

impl CodedPacket {
    /// Wire size of the packet in bytes: the coefficient vector rides
    /// in the header, so coding pays `k` bytes of overhead per packet.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        (self.coeffs.len() + self.payload.len()) as u64
    }
}

/// A stored, reduced basis row: `coeffs` has a leading `1` at its pivot
/// column and zeros in every earlier pivot column.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    coeffs: Vec<u8>,
    payload: Vec<u8>,
}

/// The decoding state of one vertex: the row space of every packet it
/// has absorbed, kept in incrementally Gaussian-eliminated form.
///
/// `rows[j]`, when present, is the unique stored row whose pivot
/// (first nonzero coefficient) sits at column `j`, normalized to `1`.
/// Absorbing a packet reduces it against the stored rows in one pass;
/// a packet that reduces to zero is *not innovative* (it is already in
/// the span) and is dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedBasis {
    k: usize,
    payload_len: usize,
    rows: Vec<Option<Row>>,
    rank: usize,
}

impl CodedBasis {
    /// An empty basis for a generation of `k` packets of
    /// `payload_len` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, payload_len: usize) -> Self {
        assert!(k > 0, "generation needs at least one packet");
        CodedBasis {
            k,
            payload_len,
            rows: vec![None; k],
            rank: 0,
        }
    }

    /// The full-rank basis of a source holding the original generation:
    /// identity coefficients over `payloads`.
    ///
    /// # Panics
    ///
    /// Panics if `payloads` is empty or its rows differ in length.
    #[must_use]
    pub fn source(payloads: &[Vec<u8>]) -> Self {
        let k = payloads.len();
        assert!(k > 0, "generation needs at least one packet");
        let payload_len = payloads[0].len();
        let rows = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                assert_eq!(p.len(), payload_len, "ragged generation payloads");
                let mut coeffs = vec![0u8; k];
                coeffs[i] = 1;
                Some(Row {
                    coeffs,
                    payload: p.clone(),
                })
            })
            .collect();
        CodedBasis {
            k,
            payload_len,
            rows,
            rank: k,
        }
    }

    /// Generation size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Payload bytes per packet.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Current rank: the number of linearly independent packets
    /// absorbed so far.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// How many more innovative packets are needed to decode.
    #[must_use]
    pub fn deficit(&self) -> usize {
        self.k - self.rank
    }

    /// Whether the generation is decodable (`rank == k`).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.rank == self.k
    }

    /// Absorbs a packet, returning `true` iff it was innovative (its
    /// coefficient vector was outside the current span and the rank
    /// grew by one).
    ///
    /// # Panics
    ///
    /// Panics if the packet's dimensions do not match the basis.
    pub fn absorb(&mut self, mut packet: CodedPacket) -> bool {
        assert_eq!(packet.coeffs.len(), self.k, "coefficient length mismatch");
        assert_eq!(
            packet.payload.len(),
            self.payload_len,
            "payload length mismatch"
        );
        for col in 0..self.k {
            let c = packet.coeffs[col];
            if c == 0 {
                continue;
            }
            match &self.rows[col] {
                Some(row) => {
                    // Stored rows are pivot-normalized to 1, so
                    // subtracting c·row zeros this column.
                    gf256::mul_add_slice(&mut packet.coeffs, c, &row.coeffs);
                    gf256::mul_add_slice(&mut packet.payload, c, &row.payload);
                    debug_assert_eq!(packet.coeffs[col], 0);
                }
                None => {
                    let inv = gf256::inv(c);
                    gf256::mul_slice(&mut packet.coeffs, inv);
                    gf256::mul_slice(&mut packet.payload, inv);
                    self.rows[col] = Some(Row {
                        coeffs: packet.coeffs,
                        payload: packet.payload,
                    });
                    self.rank += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Whether a packet with this coefficient vector would be
    /// innovative, without absorbing it.
    ///
    /// # Panics
    ///
    /// Panics on a coefficient-length mismatch.
    #[must_use]
    pub fn is_innovative(&self, coeffs: &[u8]) -> bool {
        assert_eq!(coeffs.len(), self.k, "coefficient length mismatch");
        let mut c = coeffs.to_vec();
        for col in 0..self.k {
            let f = c[col];
            if f == 0 {
                continue;
            }
            match &self.rows[col] {
                Some(row) => gf256::mul_add_slice(&mut c, f, &row.coeffs),
                None => return true,
            }
        }
        false
    }

    /// How many innovative packets `sender` could supply to this
    /// receiver: `rank(self ∪ sender) − rank(self)`. This is the coded
    /// analogue of the uncoded candidate count `|have(src) ∖
    /// have(dst)|`, and zero exactly when the sender's span is already
    /// contained in the receiver's.
    ///
    /// # Panics
    ///
    /// Panics if the generation sizes differ.
    #[must_use]
    pub fn innovative_capacity_from(&self, sender: &CodedBasis) -> usize {
        assert_eq!(self.k, sender.k, "generation size mismatch");
        let mut scratch: Vec<Option<Vec<u8>>> = self
            .rows
            .iter()
            .map(|r| r.as_ref().map(|row| row.coeffs.clone()))
            .collect();
        let mut gained = 0;
        for row in sender.rows.iter().flatten() {
            if let Some((col, reduced)) = reduce_coeffs(&scratch, row.coeffs.clone()) {
                scratch[col] = Some(reduced);
                gained += 1;
            }
        }
        gained
    }

    /// Emits one fresh random combination of the stored rows (the RLNC
    /// relay rule: mix everything you can reproduce).
    ///
    /// Draws one `u32` per stored row in ascending pivot order, using
    /// the low byte; redraws only if every weight came up zero.
    ///
    /// # Panics
    ///
    /// Panics on an empty basis — a vertex with rank 0 has nothing to
    /// code from.
    #[must_use]
    pub fn random_packet(&self, rng: &mut dyn RngCore) -> CodedPacket {
        assert!(self.rank > 0, "cannot code from an empty basis");
        loop {
            let weights: Vec<u8> = self
                .rows
                .iter()
                .flatten()
                .map(|_| (rng.next_u32() & 0xFF) as u8)
                .collect();
            if weights.iter().all(|&w| w == 0) {
                continue;
            }
            let mut coeffs = vec![0u8; self.k];
            let mut payload = vec![0u8; self.payload_len];
            for (row, &w) in self.rows.iter().flatten().zip(&weights) {
                gf256::mul_add_slice(&mut coeffs, w, &row.coeffs);
                gf256::mul_add_slice(&mut payload, w, &row.payload);
            }
            return CodedPacket { coeffs, payload };
        }
    }

    /// Decodes the generation by back-substitution. `None` until the
    /// rank reaches `k`; afterwards returns the `k` original payloads
    /// in source order.
    #[must_use]
    pub fn decode(&self) -> Option<Vec<Vec<u8>>> {
        if self.rank < self.k {
            return None;
        }
        let mut rows: Vec<Row> = self
            .rows
            .iter()
            .map(|r| r.clone().expect("full rank stores every pivot"))
            .collect();
        for col in (0..self.k).rev() {
            let (above, below) = rows.split_at_mut(col);
            let pivot = &below[0];
            for r in above.iter_mut() {
                let f = r.coeffs[col];
                if f != 0 {
                    gf256::mul_add_slice(&mut r.coeffs, f, &pivot.coeffs);
                    gf256::mul_add_slice(&mut r.payload, f, &pivot.payload);
                }
            }
        }
        // Fully reduced: rows[i].coeffs is the i-th unit vector, so
        // rows[i].payload is source packet i.
        debug_assert!(rows.iter().enumerate().all(|(i, r)| r
            .coeffs
            .iter()
            .enumerate()
            .all(|(j, &c)| c == u8::from(i == j))));
        Some(rows.into_iter().map(|r| r.payload).collect())
    }
}

/// Reduces a bare coefficient vector against a scratch basis. Returns
/// the pivot column and normalized vector if it is independent, `None`
/// if it reduced to zero.
fn reduce_coeffs(scratch: &[Option<Vec<u8>>], mut c: Vec<u8>) -> Option<(usize, Vec<u8>)> {
    for col in 0..c.len() {
        let f = c[col];
        if f == 0 {
            continue;
        }
        match &scratch[col] {
            Some(basis) => gf256::mul_add_slice(&mut c, f, basis),
            None => {
                gf256::mul_slice(&mut c, gf256::inv(f));
                return Some((col, c));
            }
        }
    }
    None
}

/// An RLNC distribution problem: one source holds a generation of `k`
/// real payloads; every receiver must collect `k` innovative
/// combinations and decode them back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlncInstance {
    graph: DiGraph,
    payloads: Vec<Vec<u8>>,
    receiver: Vec<bool>,
    source: NodeId,
}

impl RlncInstance {
    /// Single source at `source` holding a deterministic generation of
    /// `k` packets of `payload_len` bytes; every other vertex is a
    /// receiver. The payload bytes are a fixed mixing pattern so decode
    /// results are checkable without carrying the instance around.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `source` is out of bounds.
    #[must_use]
    pub fn single_source(graph: DiGraph, k: usize, payload_len: usize, source: usize) -> Self {
        assert!(k > 0, "generation needs at least one packet");
        let source = graph.node(source);
        let payloads = (0..k)
            .map(|i| {
                (0..payload_len)
                    .map(|j| (i.wrapping_mul(151) ^ j.wrapping_mul(31) ^ 0x5C) as u8)
                    .collect()
            })
            .collect();
        let mut receiver = vec![true; graph.node_count()];
        receiver[source.index()] = false;
        RlncInstance {
            graph,
            payloads,
            receiver,
            source,
        }
    }

    /// The overlay graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Generation size `k`.
    #[must_use]
    pub fn generation(&self) -> usize {
        self.payloads.len()
    }

    /// Payload bytes per packet.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payloads[0].len()
    }

    /// Wire bytes per coded packet: payload plus the `k`-byte
    /// coefficient header.
    #[must_use]
    pub fn packet_bytes(&self) -> u64 {
        (self.generation() + self.payload_len()) as u64
    }

    /// The source vertex.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Whether `v` must decode the generation.
    #[must_use]
    pub fn is_receiver(&self, v: NodeId) -> bool {
        self.receiver[v.index()]
    }

    /// The original generation payloads.
    #[must_use]
    pub fn payloads(&self) -> &[Vec<u8>] {
        &self.payloads
    }

    /// Per-vertex starting bases: the source's identity basis, empty
    /// everywhere else.
    #[must_use]
    pub fn initial_bases(&self) -> Vec<CodedBasis> {
        let k = self.generation();
        self.graph
            .nodes()
            .map(|v| {
                if v == self.source {
                    CodedBasis::source(&self.payloads)
                } else {
                    CodedBasis::new(k, self.payload_len())
                }
            })
            .collect()
    }

    /// Whether `basis` decodes to exactly this instance's generation.
    #[must_use]
    pub fn decodes_correctly(&self, basis: &CodedBasis) -> bool {
        basis.decode().is_some_and(|p| p == self.payloads)
    }

    /// The *slot instance*: an uncoded [`Instance`] over `k` tokens in
    /// which token `r` stands for "the `r`-th innovative packet a
    /// vertex absorbs". Coded provenance records each innovative
    /// delivery against its rank-slot token, so the standard
    /// [`ProvenanceTrace::analyze`](crate::ProvenanceTrace::analyze)
    /// machinery — critical path, per-arc bottleneck attribution,
    /// acquisition trees — applies verbatim: an arc's
    /// `first_deliveries` becomes the number of innovative packets it
    /// carried, and a receiver's lineage across all `k` slots is the
    /// set of arcs whose packets entered its decoding basis.
    ///
    /// # Panics
    ///
    /// Panics if the graph/want combination is rejected by the
    /// instance builder (cannot happen for a well-formed graph).
    #[must_use]
    pub fn slot_instance(&self) -> Instance {
        let k = self.generation();
        let mut builder = Instance::builder(self.graph.clone(), k)
            .have(self.source.index(), (0..k).map(Token::new));
        for v in self.graph.nodes() {
            if self.receiver[v.index()] {
                builder = builder.want(v.index(), (0..k).map(Token::new));
            }
        }
        builder.build().expect("slot instance is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_graph::generate::classic;
    use rand::prelude::*;

    fn generation(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 7 + j * 13 + 1) as u8).collect())
            .collect()
    }

    #[test]
    fn source_basis_is_complete_and_decodes_identically() {
        let payloads = generation(4, 6);
        let basis = CodedBasis::source(&payloads);
        assert!(basis.is_complete());
        assert_eq!(basis.decode().unwrap(), payloads);
    }

    #[test]
    fn random_packets_fill_an_empty_basis_and_decode() {
        let payloads = generation(5, 9);
        let source = CodedBasis::source(&payloads);
        let mut sink = CodedBasis::new(5, 9);
        let mut rng = StdRng::seed_from_u64(42);
        let mut innovative = 0;
        while !sink.is_complete() {
            let p = source.random_packet(&mut rng);
            if sink.absorb(p) {
                innovative += 1;
            }
        }
        assert_eq!(innovative, 5, "rank grows exactly k times");
        assert_eq!(sink.decode().unwrap(), payloads);
    }

    #[test]
    fn duplicate_span_is_never_innovative() {
        let payloads = generation(3, 4);
        let source = CodedBasis::source(&payloads);
        let mut sink = CodedBasis::new(3, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let p = source.random_packet(&mut rng);
        assert!(sink.is_innovative(&p.coeffs));
        assert!(sink.absorb(p.clone()));
        // The identical combination, and any scaling of it, is now in
        // the span.
        assert!(!sink.is_innovative(&p.coeffs));
        assert!(!sink.absorb(p.clone()));
        let mut scaled = p;
        gf256::mul_slice(&mut scaled.coeffs, 0x35);
        gf256::mul_slice(&mut scaled.payload, 0x35);
        assert!(!sink.absorb(scaled));
        assert_eq!(sink.rank(), 1);
    }

    #[test]
    fn innovative_capacity_matches_rank_deficit() {
        let payloads = generation(4, 2);
        let source = CodedBasis::source(&payloads);
        let mut sink = CodedBasis::new(4, 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sink.innovative_capacity_from(&source), 4);
        while sink.rank() < 2 {
            let _ = sink.absorb(source.random_packet(&mut rng));
        }
        assert_eq!(sink.innovative_capacity_from(&source), 2);
        // A peer holding a subspace of the sink offers nothing.
        let mut peer = CodedBasis::new(4, 2);
        let _ = peer.absorb(sink.random_packet(&mut rng));
        assert_eq!(sink.innovative_capacity_from(&peer), 0);
        assert!(peer.innovative_capacity_from(&sink) > 0);
    }

    #[test]
    fn instance_shape_and_slot_instance() {
        let inst = RlncInstance::single_source(classic::cycle(5, 2, true), 3, 8, 0);
        assert_eq!(inst.generation(), 3);
        assert_eq!(inst.packet_bytes(), 11);
        assert!(!inst.is_receiver(inst.graph().node(0)));
        assert!(inst.is_receiver(inst.graph().node(2)));
        let bases = inst.initial_bases();
        assert!(bases[0].is_complete());
        assert!(inst.decodes_correctly(&bases[0]));
        assert_eq!(bases[1].rank(), 0);
        let slots = inst.slot_instance();
        assert_eq!(slots.num_tokens(), 3);
        assert_eq!(slots.graph().node_count(), 5);
    }
}
