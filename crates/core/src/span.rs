//! The suite-wide **flight recorder**: named, nested, timed spans with
//! attached counters and an instantaneous event stream, shared by the
//! lockstep engine (`ocd-heuristics`), the asynchronous swarm runtime
//! (`ocd-net`), and the exact solvers (`ocd-lp`/`ocd-solver`).
//!
//! # Design
//!
//! Instrumented code records through the [`SpanRecorder`] trait, which
//! has two implementations — the same zero-cost pattern as
//! [`Recorder`](crate::metrics::Recorder) and
//! [`ProvenanceHook`](crate::provenance::ProvenanceHook):
//!
//! - [`NoopSpans`]: every method is an empty `#[inline(always)]` body
//!   and [`SpanRecorder::enabled`] is a constant `false`. Code
//!   monomorphized over it compiles down to the uninstrumented loop —
//!   spans cost **nothing when disabled** (the `engine_step_loop`
//!   microbench is the regression guard).
//! - [`FlightRecorder`]: the real store. Spans nest by open/close
//!   order (strictly LIFO), carry `(key, value)` counters attached
//!   while open, and share a run-wide sequence clock with the
//!   instantaneous [`SpanRecorder::event`] stream.
//!
//! # Two clocks
//!
//! Every open/close/event advances a deterministic **sequence clock**;
//! a [`FlightRecorder::wall`] recorder *additionally* measures each
//! span's wall-clock duration with [`std::time::Instant`]. Exported
//! artifacts (`to_chrome_json`, `to_json`, `to_csv`) place spans on
//! the sequence clock only, so a [`FlightRecorder::logical`] recorder
//! driven by a deterministic system serializes to **byte-identical**
//! artifacts across equal-seed runs — the same contract as
//! [`MetricsSnapshot`](crate::metrics::MetricsSnapshot). Wall-clock
//! durations are opt-in at the construction site (e.g.
//! `SimConfig::metric_timings` in the engine) precisely because they
//! break that guarantee.
//!
//! # Examples
//!
//! ```
//! use ocd_core::span::{FlightRecorder, SpanRecorder};
//!
//! let mut rec = FlightRecorder::logical();
//! let step = rec.open("engine.step");
//! let plan = rec.open("engine.plan");
//! rec.attach(plan, "moves", 3);
//! rec.close(plan);
//! rec.event("engine.complete", 7);
//! rec.close(step);
//! assert_eq!(rec.spans().len(), 2);
//! assert_eq!(rec.count("engine."), 2);
//! let chrome = rec.to_chrome_json("demo");
//! assert!(chrome.starts_with("{\"traceEvents\":["));
//! ```

use std::time::Instant;

/// Handle to an open (or closed) span inside one recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

/// One finished span: where it sat in the nesting, its interval on the
/// run's sequence clock, its wall-clock duration (zero under a
/// [`FlightRecorder::logical`] recorder), and the counters attached
/// while it was open.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (a static label like `"bnb.node.branched"`).
    pub name: &'static str,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Nesting depth (root spans sit at 0).
    pub depth: u16,
    /// Sequence-clock tick at which the span opened.
    pub start_seq: u64,
    /// Sequence-clock tick at which the span closed (`> start_seq`
    /// once closed; equal to `start_seq` while still open).
    pub end_seq: u64,
    /// Wall-clock nanoseconds between open and close; 0 under the
    /// logical clock.
    pub wall_ns: u64,
    /// Counters attached via [`SpanRecorder::attach`], in attach order.
    pub counters: Vec<(&'static str, u64)>,
}

/// One instantaneous event on the run's sequence clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Event name (a static label like `"bnb.incumbent"`).
    pub name: &'static str,
    /// Sequence-clock tick at which the event fired.
    pub seq: u64,
    /// The event's payload value.
    pub value: u64,
}

/// The span-recording interface instrumented code is generic over.
///
/// Spans are strictly nested: [`SpanRecorder::close`] must receive the
/// innermost open span (LIFO). Counters are deterministic metadata —
/// attach quantities derived from the computation (moves admitted, LP
/// iterations, bounds in milli-units), never clock readings, so that
/// logical-clock artifacts stay byte-identical across equal seeds.
///
/// [`NoopSpans`] implements everything as empty `#[inline(always)]`
/// bodies; monomorphizing over it erases the instrumentation entirely.
/// Hot paths that must *compute* something before recording it should
/// guard on [`SpanRecorder::enabled`], which is a constant after
/// monomorphization.
pub trait SpanRecorder {
    /// Whether recordings are kept. `false` for [`NoopSpans`], and
    /// constant-foldable after monomorphization.
    fn enabled(&self) -> bool;

    /// Opens a named span nested under the innermost open span.
    fn open(&mut self, name: &'static str) -> SpanId;

    /// Closes a span. Must be the innermost open span.
    fn close(&mut self, id: SpanId);

    /// Attaches a `(key, value)` counter to an open span.
    fn attach(&mut self, id: SpanId, key: &'static str, value: u64);

    /// Records an instantaneous named event.
    fn event(&mut self, name: &'static str, value: u64);
}

/// The do-nothing recorder: disabled spans at zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSpans;

impl SpanRecorder for NoopSpans {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn open(&mut self, _name: &'static str) -> SpanId {
        SpanId(0)
    }
    #[inline(always)]
    fn close(&mut self, _id: SpanId) {}
    #[inline(always)]
    fn attach(&mut self, _id: SpanId, _key: &'static str, _value: u64) {}
    #[inline(always)]
    fn event(&mut self, _name: &'static str, _value: u64) {}
}

/// Which clock a [`FlightRecorder`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanClock {
    /// Sequence clock only: byte-identical artifacts across equal
    /// seeds.
    Logical,
    /// Sequence clock plus wall-clock span durations.
    Wall,
}

/// The real span store: nested spans on a deterministic sequence
/// clock, optionally wall-timed.
#[derive(Debug)]
pub struct FlightRecorder {
    clock: SpanClock,
    spans: Vec<SpanRecord>,
    events: Vec<SpanEvent>,
    /// Innermost-last stack of open spans, with their wall-clock open
    /// instants (unused under the logical clock).
    stack: Vec<(u32, Instant)>,
    seq: u64,
}

impl FlightRecorder {
    /// A recorder on the sequence clock only: equal-seed runs of a
    /// deterministic system produce byte-identical artifacts.
    #[must_use]
    pub fn logical() -> Self {
        FlightRecorder {
            clock: SpanClock::Logical,
            spans: Vec::new(),
            events: Vec::new(),
            stack: Vec::new(),
            seq: 0,
        }
    }

    /// A recorder that additionally measures each span's wall-clock
    /// duration (breaks byte-identical artifacts; exports still place
    /// spans on the sequence clock).
    #[must_use]
    pub fn wall() -> Self {
        FlightRecorder {
            clock: SpanClock::Wall,
            ..FlightRecorder::logical()
        }
    }

    fn tick(&mut self) -> u64 {
        let now = self.seq;
        self.seq += 1;
        now
    }

    /// All spans, in open order.
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// All instantaneous events, in firing order.
    #[must_use]
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Number of spans whose name starts with `prefix`.
    #[must_use]
    pub fn count(&self, prefix: &str) -> usize {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .count()
    }

    /// Whether every opened span has been closed.
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        self.stack.is_empty()
    }

    /// Renders the timeline as Chrome/Perfetto `trace_event` JSON
    /// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// Spans become complete (`"ph": "X"`) slices and events become
    /// instant (`"ph": "i"`) marks, both timestamped on the sequence
    /// clock (1 tick = 1µs in trace units), interleaved in sequence
    /// order. Wall-clock durations, when recorded, ride along as a
    /// `wall_ns` arg. The output is a pure function of the recorded
    /// spans, so logical-clock recorders export byte-identically
    /// across equal-seed runs.
    #[must_use]
    pub fn to_chrome_json(&self, process_name: &str) -> String {
        let mut lines = Vec::with_capacity(self.spans.len() + self.events.len() + 1);
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(process_name)
        ));
        // Merge the two seq-sorted streams into one timeline.
        let mut si = 0;
        let mut ei = 0;
        while si < self.spans.len() || ei < self.events.len() {
            let span_next = self
                .spans
                .get(si)
                .is_some_and(|s| self.events.get(ei).is_none_or(|e| s.start_seq <= e.seq));
            if span_next {
                let s = &self.spans[si];
                si += 1;
                let mut args = format!("\"depth\":{}", s.depth);
                if self.clock == SpanClock::Wall {
                    let _ = std::fmt::Write::write_fmt(
                        &mut args,
                        format_args!(",\"wall_ns\":{}", s.wall_ns),
                    );
                }
                for (key, value) in &s.counters {
                    let _ = std::fmt::Write::write_fmt(
                        &mut args,
                        format_args!(",\"{}\":{value}", escape(key)),
                    );
                }
                lines.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                     \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                    escape(s.name),
                    s.start_seq,
                    s.end_seq.saturating_sub(s.start_seq).max(1),
                ));
            } else {
                let e = &self.events[ei];
                ei += 1;
                lines.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\
                     \"ts\":{},\"s\":\"p\",\"args\":{{\"value\":{}}}}}",
                    escape(e.name),
                    e.seq,
                    e.value,
                ));
            }
        }
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
            lines.join(",\n")
        )
    }

    /// Renders the raw span/event records as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                let counters: Vec<String> = s
                    .counters
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"depth\":{},\"start\":{},\"end\":{},\
                     \"wall_ns\":{},\"counters\":{{{}}}}}",
                    escape(s.name),
                    s.depth,
                    s.start_seq,
                    s.end_seq,
                    s.wall_ns,
                    counters.join(",")
                )
            })
            .collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\":\"{}\",\"seq\":{},\"value\":{}}}",
                    escape(e.name),
                    e.seq,
                    e.value
                )
            })
            .collect();
        format!(
            "{{\"spans\":[{}],\"events\":[{}]}}\n",
            spans.join(","),
            events.join(",")
        )
    }

    /// Renders the records as CSV
    /// (`kind,name,depth,start,end,wall_ns,counters`), counters packed
    /// as `key=value` pairs separated by `;`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,depth,start,end,wall_ns,counters\n");
        for s in &self.spans {
            let counters: Vec<String> =
                s.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "span,{},{},{},{},{},{}\n",
                    s.name,
                    s.depth,
                    s.start_seq,
                    s.end_seq,
                    s.wall_ns,
                    counters.join(";")
                ),
            );
        }
        for e in &self.events {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "event,{},0,{},{},0,value={}\n",
                    e.name, e.seq, e.seq, e.value
                ),
            );
        }
        out
    }
}

impl SpanRecorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn open(&mut self, name: &'static str) -> SpanId {
        let start_seq = self.tick();
        let parent = self.stack.last().map(|&(i, _)| SpanId(i));
        let depth = self.stack.len() as u16;
        let index = self.spans.len() as u32;
        self.spans.push(SpanRecord {
            name,
            parent,
            depth,
            start_seq,
            end_seq: start_seq,
            wall_ns: 0,
            counters: Vec::new(),
        });
        self.stack.push((index, Instant::now()));
        SpanId(index)
    }

    fn close(&mut self, id: SpanId) {
        let (index, opened) = self.stack.pop().expect("close called with no span open");
        assert_eq!(index, id.0, "spans must close innermost-first (LIFO)");
        let end_seq = self.tick();
        let span = &mut self.spans[index as usize];
        span.end_seq = end_seq;
        if self.clock == SpanClock::Wall {
            span.wall_ns = u64::try_from(opened.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }

    fn attach(&mut self, id: SpanId, key: &'static str, value: u64) {
        self.spans[id.0 as usize].counters.push((key, value));
    }

    fn event(&mut self, name: &'static str, value: u64) {
        let seq = self.tick();
        self.events.push(SpanEvent { name, seq, value });
    }
}

/// Escapes a name for embedding in a JSON string (names are static
/// identifiers, but quotes and backslashes are handled defensively).
fn escape(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let mut noop = NoopSpans;
        assert!(!noop.enabled());
        let id = noop.open("anything");
        noop.attach(id, "k", 1);
        noop.event("e", 2);
        noop.close(id);
    }

    #[test]
    fn spans_nest_and_interleave_with_events() {
        let mut rec = FlightRecorder::logical();
        assert!(rec.enabled());
        let outer = rec.open("outer");
        let inner = rec.open("inner");
        rec.attach(inner, "moves", 5);
        rec.event("mark", 9);
        rec.close(inner);
        rec.close(outer);
        assert!(rec.is_balanced());

        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert!(spans[0].parent.is_none());
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].parent, Some(SpanId(0)));
        assert_eq!(spans[1].counters, vec![("moves", 5)]);
        // Sequence clock: outer=[0,4), inner=[1,3), event at 2.
        assert_eq!((spans[0].start_seq, spans[0].end_seq), (0, 4));
        assert_eq!((spans[1].start_seq, spans[1].end_seq), (1, 3));
        assert_eq!(
            rec.events(),
            &[SpanEvent {
                name: "mark",
                seq: 2,
                value: 9
            }]
        );
        // Logical clock records no wall time.
        assert_eq!(spans[0].wall_ns, 0);
        assert_eq!(rec.count("inn"), 1);
        assert_eq!(rec.count(""), 2);
    }

    #[test]
    fn wall_clock_measures_durations() {
        let mut rec = FlightRecorder::wall();
        let id = rec.open("timed");
        std::hint::black_box((0..1000).sum::<u64>());
        rec.close(id);
        // Wall duration is nonzero (Instant is monotonic and the body
        // did work), but the sequence interval is still deterministic.
        assert_eq!((rec.spans()[0].start_seq, rec.spans()[0].end_seq), (0, 1));
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_close_panics() {
        let mut rec = FlightRecorder::logical();
        let outer = rec.open("outer");
        let _inner = rec.open("inner");
        rec.close(outer);
    }

    #[test]
    fn chrome_export_is_deterministic_and_ordered() {
        let render = || {
            let mut rec = FlightRecorder::logical();
            let a = rec.open("phase.a");
            rec.attach(a, "n", 3);
            rec.close(a);
            rec.event("incumbent", 41);
            let b = rec.open("phase.b");
            rec.close(b);
            rec.to_chrome_json("ocd test")
        };
        let json = render();
        assert_eq!(json, render(), "equal recordings render identically");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // Timeline order: metadata, phase.a, incumbent, phase.b.
        let a_pos = json.find("phase.a").unwrap();
        let inc_pos = json.find("incumbent").unwrap();
        let b_pos = json.find("phase.b").unwrap();
        assert!(a_pos < inc_pos && inc_pos < b_pos, "{json}");
        assert!(json.contains("\"n\":3"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        // Logical clock omits wall_ns from chrome args.
        assert!(!json.contains("wall_ns"), "{json}");
    }

    #[test]
    fn wall_export_carries_wall_ns_arg() {
        let mut rec = FlightRecorder::wall();
        let id = rec.open("timed");
        rec.close(id);
        assert!(rec.to_chrome_json("t").contains("\"wall_ns\":"));
    }

    #[test]
    fn json_and_csv_exports_roundtrip_shape() {
        let mut rec = FlightRecorder::logical();
        let id = rec.open("s");
        rec.attach(id, "k", 7);
        rec.close(id);
        rec.event("e", 1);
        let json = rec.to_json();
        assert!(json.contains("\"spans\":[{\"name\":\"s\""), "{json}");
        assert!(json.contains("\"counters\":{\"k\":7}"), "{json}");
        assert!(json.contains("\"events\":[{\"name\":\"e\""), "{json}");
        let csv = rec.to_csv();
        assert!(csv.starts_with("kind,name,depth,start,end,wall_ns,counters\n"));
        assert!(csv.contains("span,s,0,0,1,0,k=7\n"), "{csv}");
        assert!(csv.contains("event,e,0,2,2,0,value=1\n"), "{csv}");
    }
}
