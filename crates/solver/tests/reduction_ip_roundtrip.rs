//! Round-trip of the Theorem-5 reduction through the rewritten exact
//! stack: Dominating-Set graphs reduce to FOCD instances of 30–50
//! vertices, the sparse-simplex/warm-started-B&B IP solves them at
//! horizon 2, and the witness schedule must certify under
//! `ocd_core::validate::replay` and decode back to a genuine dominating
//! set.

use ocd_core::validate;
use ocd_graph::algo::is_dominating_set;
use ocd_graph::DiGraph;
use ocd_lp::MipOptions;
use ocd_solver::ip::min_bandwidth_for_horizon;
use ocd_solver::reduction::{dominating_set_from_schedule, focd_from_dominating_set};
use rand::prelude::*;

/// Random symmetric graph whose first `k` vertices are guaranteed to
/// dominate it (any vertex the random edges leave uncovered gets an arc
/// to a random one of them), so the reduced FOCD instance is feasible in
/// 2 steps by construction.
fn covered_random_graph(n: usize, k: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                g.add_edge_symmetric(g.node(u), g.node(v), 1).unwrap();
            }
        }
    }
    for v in k..n {
        let covered = (0..k).any(|c| g.find_edge(g.node(c), g.node(v)).is_some());
        if !covered {
            let c = rng.random_range(0..k);
            g.add_edge_symmetric(g.node(c), g.node(v), 1).unwrap();
        }
    }
    g
}

/// Feasibility-mode options: the huge absolute gap stops the MILP at its
/// first incumbent, which is all the reduction decision needs.
fn feasibility_options(threads: usize) -> MipOptions {
    MipOptions {
        threads,
        absolute_gap: 1e12,
        ..MipOptions::default()
    }
}

#[test]
fn reduced_instances_certify_under_replay() {
    // Reduced sizes 2n + 2 = 30, 40, 50 vertices.
    for (n, k, seed) in [(14usize, 3usize, 1u64), (19, 4, 2), (24, 5, 3)] {
        let g = covered_random_graph(n, k, 0.15, seed);
        let (instance, layout) = focd_from_dominating_set(&g, k);
        assert_eq!(instance.num_vertices(), 2 * n + 2);
        let r = min_bandwidth_for_horizon(&instance, 2, &feasibility_options(4))
            .unwrap()
            .expect("first k vertices dominate by construction");
        let replay = validate::replay(&instance, &r.schedule).unwrap();
        assert!(
            replay.is_successful(),
            "n = {n}: IP witness failed replay certification"
        );
        assert!(r.schedule.makespan() <= 2);
        let ds = dominating_set_from_schedule(&layout, &instance, &r.schedule);
        assert!(
            ds.len() <= k,
            "n = {n}: witness dominating set larger than k = {k}"
        );
        assert!(
            is_dominating_set(&g, &ds),
            "n = {n}: extracted set {ds:?} does not dominate"
        );
    }
}

#[test]
fn infeasible_reduction_is_rejected_at_scale() {
    // An edgeless graph has domination number n, so k = 1 (n ≥ 2) gives
    // an infeasible 30-vertex instance the IP must refute.
    let g = DiGraph::with_nodes(14);
    let (instance, _) = focd_from_dominating_set(&g, 1);
    assert_eq!(instance.num_vertices(), 30);
    assert!(
        min_bandwidth_for_horizon(&instance, 2, &feasibility_options(1))
            .unwrap()
            .is_none(),
        "edgeless graph cannot be dominated by one vertex"
    );
}

#[test]
fn reduced_solve_is_thread_invariant() {
    let g = covered_random_graph(14, 3, 0.15, 7);
    let (instance, _) = focd_from_dominating_set(&g, 3);
    let seq = min_bandwidth_for_horizon(&instance, 2, &feasibility_options(1))
        .unwrap()
        .unwrap();
    let par = min_bandwidth_for_horizon(&instance, 2, &feasibility_options(4))
        .unwrap()
        .unwrap();
    assert_eq!(
        format!("{:?}", seq.schedule),
        format!("{:?}", par.schedule),
        "schedules must be byte-identical across thread counts"
    );
    assert_eq!(seq.mip_nodes, par.mip_nodes);
    assert_eq!(seq.lp_iterations, par.lp_iterations);
    assert_eq!(seq.bandwidth, par.bandwidth);
}
