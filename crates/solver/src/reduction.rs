//! The Dominating-Set → FOCD reduction (Theorem 5, Appendix, Figure 7).
//!
//! Given a graph `G = (V, E)` with `n = |V|` and an integer `k`, the
//! reduction builds an FOCD instance on `2n + 2` vertices
//! `{s, t} ∪ V ∪ V'` with tokens `{0} ∪ {1, …, n-k}`:
//!
//! - `s` holds every token; arcs `s → v_i` of capacity 1;
//! - arcs `v_i → t` of capacity 1; `t` wants `{1, …, n-k}`;
//! - arcs `v_i → v'_i` for every `i` and `v_i → v'_j` for every
//!   `(v_i, v_j) ∈ E`; every `v'_i` wants `{0}`.
//!
//! **`G` has a dominating set of size ≤ `k` iff the FOCD instance is
//! satisfiable in 2 timesteps**: in step 1 the dominating vertices
//! receive token 0 and the other `n - k` vertices receive the distinct
//! relay tokens; in step 2 the relays feed `t` while the dominators
//! broadcast 0 across `V'`.

use ocd_core::{Instance, Schedule, Token, TokenSet};
use ocd_graph::{DiGraph, NodeId};

/// Vertex layout of the reduced instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionLayout {
    /// Number of vertices in the original Dominating-Set graph.
    pub n: usize,
    /// The dominating-set size bound `k`.
    pub k: usize,
    /// Index of the source vertex `s` (always 0).
    pub source: usize,
    /// Index of the sink `t` (always 1).
    pub sink: usize,
    /// `mid_start + i` is the intermediary `v_i` (always 2).
    pub mid_start: usize,
    /// `prime_start + i` is the receiver `v'_i` (always `2 + n`).
    pub prime_start: usize,
}

/// Builds the FOCD instance deciding whether `g` has a dominating set of
/// size at most `k`. Dominating is over the undirected view of `g`
/// (matching [`ocd_graph::algo::dominating_set_exact`]).
///
/// # Panics
///
/// Panics if `k >= n` (the question is trivial) or `n == 0`.
#[must_use]
pub fn focd_from_dominating_set(g: &DiGraph, k: usize) -> (Instance, ReductionLayout) {
    let n = g.node_count();
    assert!(n > 0, "dominating set needs a non-empty graph");
    assert!(
        k < n,
        "k = {k} ≥ n = {n} makes the dominating-set question trivial"
    );
    let m = n - k + 1; // token 0 plus relay tokens 1..=n-k
    let layout = ReductionLayout {
        n,
        k,
        source: 0,
        sink: 1,
        mid_start: 2,
        prime_start: 2 + n,
    };
    let mut fg = DiGraph::with_nodes(2 + 2 * n);
    let s = fg.node(layout.source);
    let t = fg.node(layout.sink);
    for i in 0..n {
        let vi = fg.node(layout.mid_start + i);
        fg.add_edge(s, vi, 1).expect("s -> v_i");
        fg.add_edge(vi, t, 1).expect("v_i -> t");
        let vpi = fg.node(layout.prime_start + i);
        fg.add_edge(vi, vpi, 1).expect("v_i -> v'_i");
    }
    // v_i -> v'_j for each (undirected) adjacency in g.
    for e in g.edges() {
        let (i, j) = (e.src.index(), e.dst.index());
        let vi = fg.node(layout.mid_start + i);
        let vpj = fg.node(layout.prime_start + j);
        let _ = fg.add_edge(vi, vpj, 1); // may merge with existing arc
        let vj = fg.node(layout.mid_start + j);
        let vpi = fg.node(layout.prime_start + i);
        let _ = fg.add_edge(vj, vpi, 1);
    }
    let mut builder = Instance::builder(fg, m)
        .have_set(layout.source, TokenSet::full(m))
        .want_set(
            layout.sink,
            TokenSet::from_range(m, 1..m), // tokens 1..=n-k
        );
    for i in 0..n {
        builder = builder.want(layout.prime_start + i, [Token::new(0)]);
    }
    (builder.build().expect("source holds every token"), layout)
}

/// Extracts the dominating set witnessed by a successful ≤ 2-step
/// schedule of the reduced instance: the original vertices whose
/// intermediary `v_i` received token 0 in step 1.
///
/// # Panics
///
/// Panics if the schedule is empty.
#[must_use]
pub fn dominating_set_from_schedule(
    layout: &ReductionLayout,
    instance: &Instance,
    schedule: &Schedule,
) -> Vec<NodeId> {
    assert!(schedule.makespan() >= 1, "need at least one step");
    let g = instance.graph();
    let first = &schedule.steps()[0];
    let mut set = Vec::new();
    for (edge, tokens) in first.sends() {
        let arc = g.edge(edge);
        if arc.src.index() == layout.source && tokens.contains(Token::new(0)) {
            let dst = arc.dst.index();
            if (layout.mid_start..layout.mid_start + layout.n).contains(&dst) {
                set.push(NodeId::new(dst - layout.mid_start));
            }
        }
    }
    set.sort_unstable();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{decide_focd, BnbOptions};
    use ocd_graph::algo::{has_dominating_set_of_size, is_dominating_set};
    use ocd_graph::generate::classic;

    fn decide_two_steps(instance: &Instance) -> Option<Schedule> {
        decide_focd(instance, 2, &BnbOptions::default()).expect("within node budget")
    }

    #[test]
    fn layout_indices() {
        let g = classic::path(3, 1, true);
        let (instance, layout) = focd_from_dominating_set(&g, 1);
        assert_eq!(instance.num_vertices(), 8);
        assert_eq!(instance.num_tokens(), 3); // {0, 1, 2}
        assert_eq!(layout.prime_start, 5);
        // s holds everything; t wants the relays; primes want 0.
        assert!(instance.have(instance.graph().node(0)).is_full());
        assert_eq!(instance.want(instance.graph().node(1)).len(), 2);
        for i in 0..3 {
            assert!(instance
                .want(instance.graph().node(layout.prime_start + i))
                .contains(Token::new(0)));
        }
    }

    #[test]
    fn star_reduces_positively_for_k1() {
        // A star has a dominating set of size 1 (the center).
        let g = classic::star(4, 1, true);
        let (instance, layout) = focd_from_dominating_set(&g, 1);
        let schedule = decide_two_steps(&instance).expect("star is dominated by its center");
        let ds = dominating_set_from_schedule(&layout, &instance, &schedule);
        assert!(ds.len() <= 1);
        assert!(is_dominating_set(&g, &ds));
    }

    #[test]
    fn path5_negative_for_k1_positive_for_k2() {
        // P5 has domination number 2.
        let g = classic::path(5, 1, true);
        let (instance, _) = focd_from_dominating_set(&g, 1);
        assert!(
            decide_two_steps(&instance).is_none(),
            "P5 needs 2 dominators"
        );
        let (instance, layout) = focd_from_dominating_set(&g, 2);
        let schedule = decide_two_steps(&instance).expect("P5 dominated by 2");
        let ds = dominating_set_from_schedule(&layout, &instance, &schedule);
        assert!(ds.len() <= 2);
        assert!(is_dominating_set(&g, &ds));
    }

    #[test]
    fn reduction_agrees_with_exact_ds_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..12 {
            let n = rng.random_range(2..6usize);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_bool(0.45) {
                        g.add_edge_symmetric(g.node(u), g.node(v), 1).unwrap();
                    }
                }
            }
            for k in 1..n {
                let expected = has_dominating_set_of_size(&g, k);
                let (instance, layout) = focd_from_dominating_set(&g, k);
                let schedule = decide_two_steps(&instance);
                assert_eq!(
                    schedule.is_some(),
                    expected,
                    "trial {trial}, k = {k}, graph {g:?}"
                );
                if let Some(s) = schedule {
                    let ds = dominating_set_from_schedule(&layout, &instance, &s);
                    assert!(ds.len() <= k, "trial {trial}: witness too large");
                    assert!(
                        is_dominating_set(&g, &ds),
                        "trial {trial}: witness {ds:?} does not dominate"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "trivial")]
    fn k_at_least_n_panics() {
        let g = classic::path(3, 1, true);
        let _ = focd_from_dominating_set(&g, 3);
    }
}
