//! Per-token Steiner-tree bandwidth bounds and the serial schedule
//! (§3.3).
//!
//! "To distribute any token using the minimum bandwidth is to distribute
//! it along the min-cost tree from its source(s) to all nodes that want
//! that token with unit-cost edges. If we do not care about number of
//! timesteps, then optimal bandwidth can be achieved by distributing
//! each token serially over the Steiner tree."
//!
//! Directed Steiner tree is itself NP-hard, so this module uses the
//! shortest-path heuristic from `ocd-graph`. The resulting *serial
//! schedule* is a real, validated schedule, hence a constructive upper
//! bound on optimal bandwidth; the instance's total deficiency is the
//! matching lower bound. Together they sandwich both the optimum and the
//! heuristics' pruned bandwidth in the experiments.

use crate::SolveError;
use ocd_core::{Instance, Schedule, Timestep, Token, TokenSet};
use ocd_graph::algo::steiner_tree_approx;

/// Result of the per-token Steiner construction.
#[derive(Debug, Clone)]
pub struct SteinerSchedule {
    /// The serial schedule: token 0's tree level by level, then token
    /// 1's, and so on.
    pub schedule: Schedule,
    /// Bandwidth of the schedule = Σ per-token tree costs (the §3.3
    /// bandwidth upper bound).
    pub bandwidth: u64,
    /// Per-token tree cost (arcs in each token's tree).
    pub per_token_cost: Vec<u64>,
}

/// Builds the serial Steiner schedule for `instance`.
///
/// # Errors
///
/// [`SolveError::Unsatisfiable`] if some wanted token cannot reach one
/// of its wanters.
pub fn serial_steiner_schedule(instance: &Instance) -> Result<SteinerSchedule, SolveError> {
    let g = instance.graph();
    let m = instance.num_tokens();
    let mut schedule = Schedule::new();
    let mut per_token_cost = Vec::with_capacity(m);
    for ti in 0..m {
        let token = Token::new(ti);
        let terminals: Vec<_> = instance.needers_of(token);
        if terminals.is_empty() {
            per_token_cost.push(0);
            continue;
        }
        let sources = instance.havers_of(token);
        if sources.is_empty() {
            return Err(SolveError::Unsatisfiable);
        }
        let tree = steiner_tree_approx(g, &sources, &terminals).ok_or(SolveError::Unsatisfiable)?;
        per_token_cost.push(tree.cost);
        // Level the tree's arcs: an arc can fire once its source is
        // reached. Sources are level 0; arc (u, v) fires at step
        // level(u), setting level(v) = level(u) + 1. The tree arcs are
        // in graft order, which is not topological, so iterate to a
        // fixed point (tree is acyclic and tiny: this terminates in
        // ≤ depth passes).
        let mut level = vec![usize::MAX; g.node_count()];
        for &s in &sources {
            level[s.index()] = 0;
        }
        let mut fire_step = vec![usize::MAX; tree.edges.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for (i, &e) in tree.edges.iter().enumerate() {
                let arc = g.edge(e);
                if level[arc.src.index()] != usize::MAX && fire_step[i] == usize::MAX {
                    fire_step[i] = level[arc.src.index()];
                    let new_level = level[arc.src.index()] + 1;
                    if new_level < level[arc.dst.index()] || level[arc.dst.index()] == usize::MAX {
                        level[arc.dst.index()] = new_level;
                    }
                    changed = true;
                }
            }
        }
        let depth = fire_step
            .iter()
            .map(|&s| {
                debug_assert_ne!(s, usize::MAX, "tree arc never became fireable");
                s + 1
            })
            .max()
            .unwrap_or(0);
        let single = TokenSet::from_tokens(m, [token]);
        for step in 0..depth {
            let mut ts = Timestep::new();
            for (i, &e) in tree.edges.iter().enumerate() {
                if fire_step[i] == step {
                    ts.add_send(e, &single);
                }
            }
            schedule.push_timestep(ts);
        }
    }
    Ok(SteinerSchedule {
        bandwidth: schedule.bandwidth(),
        schedule,
        per_token_cost,
    })
}

/// The §3.3 bandwidth upper bound: Σ per-token Steiner-tree costs.
///
/// # Errors
///
/// [`SolveError::Unsatisfiable`] if the instance is unsatisfiable.
pub fn bandwidth_upper_bound(instance: &Instance) -> Result<u64, SolveError> {
    Ok(serial_steiner_schedule(instance)?.bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_core::bounds::bandwidth_lower_bound;
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use ocd_graph::DiGraph;

    fn tok(i: usize) -> Token {
        Token::new(i)
    }

    #[test]
    fn star_is_tight() {
        // Direct arcs to every wanter: Steiner = deficiency = optimum.
        let instance = single_file(classic::star(5, 3, false), 2, 0);
        let s = serial_steiner_schedule(&instance).unwrap();
        assert_eq!(s.bandwidth, bandwidth_lower_bound(&instance));
        let replay = validate::replay(&instance, &s.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn relay_adds_cost() {
        let g = classic::path(3, 1, false);
        let instance = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let s = serial_steiner_schedule(&instance).unwrap();
        assert_eq!(s.bandwidth, 2);
        assert_eq!(s.per_token_cost, vec![2]);
        assert_eq!(s.schedule.makespan(), 2);
        assert!(validate::replay(&instance, &s.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn serializes_tokens_one_after_another() {
        // 2 tokens over a path: token 0's relay finishes before token 1
        // starts (serial = bandwidth optimal, time horrible; §3.3).
        let instance = single_file(classic::path(3, 5, false), 2, 0);
        let s = serial_steiner_schedule(&instance).unwrap();
        assert_eq!(s.schedule.makespan(), 4, "2 tokens × depth-2 trees");
        assert_eq!(s.bandwidth, 4);
        assert!(validate::replay(&instance, &s.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn schedule_respects_unit_capacity_because_serial() {
        // Capacity 1 everywhere, 3 tokens: a parallel schedule would
        // overload arcs; the serial construction never does.
        let instance = single_file(classic::cycle(4, 1, true), 3, 0);
        let s = serial_steiner_schedule(&instance).unwrap();
        assert!(validate::replay(&instance, &s.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn sandwiches_the_exact_optimum() {
        use crate::ip::min_bandwidth_for_horizon;
        use ocd_lp::MipOptions;
        let instance = single_file(classic::cycle(4, 2, true), 2, 0);
        let lower = bandwidth_lower_bound(&instance);
        let upper = bandwidth_upper_bound(&instance).unwrap();
        let exact = min_bandwidth_for_horizon(&instance, 6, &MipOptions::default())
            .unwrap()
            .unwrap()
            .bandwidth;
        assert!(lower <= exact, "{lower} ≤ {exact}");
        assert!(exact <= upper, "{exact} ≤ {upper}");
    }

    #[test]
    fn unsatisfiable_instance_errors() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(g.node(1), g.node(0), 1).unwrap();
        let instance = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        assert_eq!(
            serial_steiner_schedule(&instance).unwrap_err(),
            SolveError::Unsatisfiable
        );
    }

    #[test]
    fn multi_source_tokens_use_nearest_source() {
        // Token held at both ends of a path; wanter in the middle: one
        // hop suffices.
        let g = classic::path(5, 1, true);
        let instance = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .have(4, [tok(0)])
            .want(3, [tok(0)])
            .build()
            .unwrap();
        let s = serial_steiner_schedule(&instance).unwrap();
        assert_eq!(s.bandwidth, 1);
        assert_eq!(s.schedule.makespan(), 1);
    }
}
