//! Exact solvers and reductions for the OCD problem.
//!
//! The paper computes ground truth two ways: "Using both a time-indexed
//! Integer Program and a branch-and-bound search strategy, we calculate
//! optimal solutions for small graphs." This crate implements both:
//!
//! - [`bnb`]: exact **FOCD** (minimum makespan) via iterative-deepening
//!   branch and bound over timesteps, pruned by the admissible bounds of
//!   `ocd-core::bounds` and a possession-state transposition table.
//! - [`ip`]: the §3.4 **time-indexed integer program** for EOCD (minimum
//!   bandwidth within a horizon), built on the `ocd-lp` MILP solver,
//!   plus the horizon sweep that traces the makespan/bandwidth Pareto
//!   frontier of Figure 1.
//! - [`reduction`]: the appendix's Dominating-Set → FOCD reduction
//!   (Theorem 5 / Figure 7), in both directions.
//! - [`steiner`]: the §3.3 observation that EOCD decomposes into
//!   per-token Steiner trees — used for constructive bandwidth upper
//!   bounds (a real, validated schedule) to sandwich the heuristics
//!   between `bounds::bandwidth_lower_bound` and the Steiner schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bnb;
pub mod ip;
pub mod reduction;
pub mod steiner;

use std::error::Error;
use std::fmt;

/// Failures of the exact solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// No successful schedule exists at all (some wanted token cannot
    /// reach a wanter).
    Unsatisfiable,
    /// No successful schedule exists within the given horizon.
    HorizonExceeded {
        /// The horizon that was tried.
        horizon: usize,
    },
    /// The search exceeded its node budget before proving anything.
    NodeLimit,
    /// The underlying MILP solver failed (iteration/node limits).
    Mip(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Unsatisfiable => f.write_str("instance is unsatisfiable"),
            SolveError::HorizonExceeded { horizon } => {
                write!(f, "no successful schedule within {horizon} timesteps")
            }
            SolveError::NodeLimit => f.write_str("search node limit exceeded"),
            SolveError::Mip(msg) => write!(f, "MILP solver failure: {msg}"),
        }
    }
}

impl Error for SolveError {}
