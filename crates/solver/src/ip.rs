//! The §3.4 time-indexed integer program.
//!
//! The paper extends the graph with a self-arc at every vertex (`E' = E ∪
//! {(v,v)}`) and creates a binary variable `x^i_{(u,v),t}` for each arc,
//! token and timestep. Self-arc variables model storage: `x^i_{(v,v),t} =
//! 1` means `v` holds `t` at time `i`. Constraints:
//!
//! - **initial**: `x^0_{(v,v),t}` fixed to `h(v)`;
//! - **possession**: a token may ride arc `(u,v)` (or persist on a
//!   self-arc) at step `i` only if `u` held or received it by step
//!   `i - 1`: `x^i_{(u,v),t} ≤ Σ_{(w,u) ∈ E'} x^{i-1}_{(w,u),t}`;
//! - **capacity**: `Σ_t x^i_{(u,v),t} ≤ c(u,v)` for real arcs (self-arcs
//!   have infinite capacity — "storage is not hard to model … simply add
//!   self-edges of infinite capacity", §2 fn. 1);
//! - **want**: `x^τ_{(v,v),t} ≥ 1` for `t ∈ w(v)`.
//!
//! The objective counts real-arc moves only, so the optimum is exactly
//! EOCD restricted to schedules of at most `τ` steps. Sweeping `τ`
//! traces the Figure 1 makespan/bandwidth trade-off.

// Time-indexed variable tables read naturally with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::SolveError;
use ocd_core::{Instance, Schedule, Token, TokenSet};
use ocd_lp::{LpError, MipOptions, Problem, Relation, Sense, VarId};

/// Result of an IP solve.
#[derive(Debug, Clone)]
pub struct IpResult {
    /// The decoded schedule (valid and successful for the instance).
    pub schedule: Schedule,
    /// Optimal bandwidth within the horizon (= `schedule.bandwidth()`).
    pub bandwidth: u64,
    /// Branch-and-bound nodes the MILP solver explored.
    pub mip_nodes: usize,
}

/// The assembled §3.4 model: the MILP plus the move-variable table
/// needed to decode a solution back into a schedule.
struct IpModel {
    problem: Problem,
    /// `moves[i][edge][token]` for steps `i ∈ 1..=horizon`.
    moves: Vec<Vec<Vec<VarId>>>,
}

/// Builds the time-indexed program for `instance` at `horizon`.
/// Returns `None` when the horizon is 0 and some want is unmet (no
/// model can help; the caller reports infeasibility).
fn build_ip(instance: &Instance, horizon: usize) -> Option<IpModel> {
    let g = instance.graph();
    let n = g.node_count();
    let m = instance.num_tokens();
    let mut problem = Problem::new(Sense::Minimize);

    // x_move[i][e][t]: token t rides real arc e during step i (1-based).
    // x_hold[i][v][t]: vertex v holds token t at time i (0-based..=τ).
    let mut hold: Vec<Vec<Vec<Option<VarId>>>> = Vec::with_capacity(horizon + 1);
    // Time 0 is fixed by h(v): represent as None (constant), with the
    // constant value tracked separately.
    let hold0: Vec<Vec<bool>> = (0..n)
        .map(|v| {
            (0..m)
                .map(|t| instance.have(g.node(v)).contains(Token::new(t)))
                .collect()
        })
        .collect();
    hold.push(vec![vec![None; m]; n]); // placeholders, constants below
    for i in 1..=horizon {
        let mut level = Vec::with_capacity(n);
        for v in 0..n {
            let mut row = Vec::with_capacity(m);
            for t in 0..m {
                row.push(Some(problem.add_binary(format!("hold_{i}_{v}_{t}"), 0.0)));
            }
            level.push(row);
        }
        hold.push(level);
    }
    let mut moves: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(horizon + 1);
    moves.push(Vec::new()); // step 0 unused (moves are 1-based)
    for i in 1..=horizon {
        let mut per_edge = Vec::with_capacity(g.edge_count());
        for e in g.edge_ids() {
            let mut row = Vec::with_capacity(m);
            for t in 0..m {
                row.push(problem.add_binary(format!("move_{i}_{}_{t}", e.index()), 1.0));
            }
            per_edge.push(row);
        }
        moves.push(per_edge);
    }

    // Possession constraints.
    for i in 1..=horizon {
        for (ei, e) in g.edge_ids().enumerate() {
            let arc = g.edge(e);
            for t in 0..m {
                // move_{i,e,t} ≤ hold_{i-1, src, t}
                let mv = moves[i][ei][t];
                add_le_hold(&mut problem, mv, i - 1, arc.src.index(), t, &hold, &hold0);
            }
        }
        for v in 0..n {
            for t in 0..m {
                // hold_{i,v,t} ≤ hold_{i-1,v,t} + Σ_{(u,v)} move_{i,(u,v),t}
                let lhs = hold[i][v][t].expect("levels ≥ 1 are variables");
                let mut terms = vec![(lhs, 1.0)];
                for e in g.in_edges(g.node(v)) {
                    terms.push((moves[i][e.index()][t], -1.0));
                }
                let rhs_const = if i == 1 {
                    if hold0[v][t] {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    terms.push((hold[i - 1][v][t].expect("variable level"), -1.0));
                    0.0
                };
                problem.add_constraint(terms, Relation::Le, rhs_const);
            }
        }
        // Capacity on real arcs.
        for (ei, e) in g.edge_ids().enumerate() {
            let cap = f64::from(g.capacity(e));
            problem.add_constraint((0..m).map(|t| (moves[i][ei][t], 1.0)), Relation::Le, cap);
        }
    }
    // Want satisfaction at time τ.
    for v in 0..n {
        for t in 0..m {
            if instance.want(g.node(v)).contains(Token::new(t)) {
                if horizon == 0 {
                    if !hold0[v][t] {
                        return None;
                    }
                } else {
                    let var = hold[horizon][v][t].expect("variable level");
                    problem.add_constraint([(var, 1.0)], Relation::Ge, 1.0);
                }
            }
        }
    }
    Some(IpModel { problem, moves })
}

/// Minimum-bandwidth successful schedule using at most `horizon`
/// timesteps, or `Ok(None)` if no successful schedule of that length
/// exists.
///
/// # Errors
///
/// [`SolveError::Mip`] if the MILP solver hits a resource limit.
pub fn min_bandwidth_for_horizon(
    instance: &Instance,
    horizon: usize,
    options: &MipOptions,
) -> Result<Option<IpResult>, SolveError> {
    let g = instance.graph();
    let m = instance.num_tokens();
    let Some(IpModel { problem, moves }) = build_ip(instance, horizon) else {
        return Ok(None);
    };

    match problem.solve_mip(options) {
        Ok(sol) => {
            let mut schedule = Schedule::new();
            for i in 1..=horizon {
                let mut sends = Vec::new();
                for (ei, e) in g.edge_ids().enumerate() {
                    let tokens: TokenSet = TokenSet::from_tokens(
                        m,
                        (0..m)
                            .filter(|&t| sol.value_int(moves[i][ei][t]) == 1)
                            .map(Token::new),
                    );
                    if !tokens.is_empty() {
                        sends.push((e, tokens));
                    }
                }
                schedule.push_step(sends);
            }
            let schedule = schedule.trimmed();
            Ok(Some(IpResult {
                bandwidth: schedule.bandwidth(),
                schedule,
                mip_nodes: sol.nodes_explored,
            }))
        }
        Err(LpError::Infeasible) => Ok(None),
        Err(e) => Err(SolveError::Mip(e.to_string())),
    }
}

fn add_le_hold(
    problem: &mut Problem,
    var: VarId,
    level: usize,
    v: usize,
    t: usize,
    hold: &[Vec<Vec<Option<VarId>>>],
    hold0: &[Vec<bool>],
) {
    if level == 0 {
        // Constant: move ≤ 0 or move ≤ 1.
        let bound = if hold0[v][t] { 1.0 } else { 0.0 };
        if bound == 0.0 {
            problem.add_constraint([(var, 1.0)], Relation::Le, 0.0);
        }
        // move ≤ 1 is implied by binariness.
    } else {
        let h = hold[level][v][t].expect("variable level");
        problem.add_constraint([(var, 1.0), (h, -1.0)], Relation::Le, 0.0);
    }
}

/// The paper's §3.4 *hybrid* goal ("search for a bandwidth-optimal
/// solution subject to the constraint that the time be no more than
/// some constant factor of the optimal time" — listed as ongoing work):
/// solves FOCD exactly for the optimal makespan `τ*`, then minimizes
/// bandwidth within the horizon `⌊α·τ*⌋`.
///
/// Returns `(τ*, result)` where the result's schedule has makespan
/// ≤ `⌊α·τ*⌋` and minimum bandwidth among such schedules.
///
/// # Errors
///
/// Propagates the FOCD solver's errors and [`SolveError::Mip`]; the
/// hybrid horizon is feasible by construction (it contains `τ*`).
///
/// # Panics
///
/// Panics if `alpha < 1.0` (the constraint would exclude the optimum).
pub fn min_bandwidth_within_factor(
    instance: &Instance,
    alpha: f64,
    bnb_options: &crate::bnb::BnbOptions,
    mip_options: &MipOptions,
) -> Result<(usize, IpResult), SolveError> {
    assert!(alpha >= 1.0, "time factor α = {alpha} must be at least 1");
    let exact = crate::bnb::solve_focd(instance, bnb_options)?;
    let horizon = ((exact.makespan as f64) * alpha).floor() as usize;
    let result = min_bandwidth_for_horizon(instance, horizon, mip_options)?
        .expect("a horizon ≥ the exact optimum is feasible");
    Ok((exact.makespan, result))
}

/// Bandwidth lower bound from the **LP relaxation** of the §3.4 IP at
/// the given horizon: drop integrality and take the ceiling of the
/// optimum. Strictly stronger than the deficiency count whenever relays
/// are unavoidable, and much cheaper than the full MILP — the bound the
/// paper wished for when it asked for "calculated upper/lower bounds …
/// exact or approximated".
///
/// Returns `Ok(None)` if even the relaxation is infeasible at this
/// horizon (which implies the IP is too).
///
/// # Errors
///
/// [`SolveError::Mip`] on simplex resource failures.
pub fn bandwidth_lp_lower_bound(
    instance: &Instance,
    horizon: usize,
) -> Result<Option<u64>, SolveError> {
    let Some(model) = build_ip(instance, horizon) else {
        return Ok(None); // horizon 0 with unmet wants
    };
    match model.problem.solve_lp() {
        Ok(sol) => Ok(Some(sol.objective.ceil().max(0.0) as u64)),
        Err(LpError::Infeasible) => Ok(None),
        Err(e) => Err(SolveError::Mip(e.to_string())),
    }
}

/// Sweeps horizons `τ = lo..=hi`, reporting for each satisfiable horizon
/// the minimum bandwidth — the makespan/bandwidth Pareto curve of
/// Figure 1. Infeasible horizons yield no entry.
///
/// # Errors
///
/// Propagates MILP resource failures.
pub fn pareto_frontier(
    instance: &Instance,
    horizons: std::ops::RangeInclusive<usize>,
    options: &MipOptions,
) -> Result<Vec<(usize, u64)>, SolveError> {
    let mut out = Vec::new();
    for tau in horizons {
        if let Some(r) = min_bandwidth_for_horizon(instance, tau, options)? {
            out.push((tau, r.bandwidth));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_core::bounds::bandwidth_lower_bound;
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use ocd_graph::DiGraph;

    fn tok(i: usize) -> Token {
        Token::new(i)
    }

    #[test]
    fn single_hop_ip() {
        let instance = single_file(classic::path(2, 1, false), 1, 0);
        let r = min_bandwidth_for_horizon(&instance, 1, &MipOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(r.bandwidth, 1);
        assert!(validate::replay(&instance, &r.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn horizon_too_short_is_none() {
        let instance = single_file(classic::path(3, 1, false), 1, 0);
        assert!(
            min_bandwidth_for_horizon(&instance, 1, &MipOptions::default())
                .unwrap()
                .is_none()
        );
        assert!(
            min_bandwidth_for_horizon(&instance, 2, &MipOptions::default())
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn zero_horizon_trivial_instance() {
        let g = classic::path(2, 1, true);
        let instance = Instance::builder(g, 1).have(0, [tok(0)]).build().unwrap();
        let r = min_bandwidth_for_horizon(&instance, 0, &MipOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(r.bandwidth, 0);
    }

    #[test]
    fn zero_horizon_nontrivial_is_none() {
        let instance = single_file(classic::path(2, 1, false), 1, 0);
        assert!(
            min_bandwidth_for_horizon(&instance, 0, &MipOptions::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn ip_matches_bandwidth_lower_bound_when_tight() {
        // Star with ample capacity: every deficiency costs exactly one
        // move, so IP bandwidth = lower bound.
        let instance = single_file(classic::star(4, 5, false), 3, 0);
        let r = min_bandwidth_for_horizon(&instance, 2, &MipOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(r.bandwidth, bandwidth_lower_bound(&instance));
        let replay = validate::replay(&instance, &r.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn relay_costs_extra_bandwidth() {
        // 0 -> 1 -> 2, only vertex 2 wants the token: the relay through 1
        // makes bandwidth 2 despite a single deficiency.
        let g = classic::path(3, 1, false);
        let instance = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let r = min_bandwidth_for_horizon(&instance, 3, &MipOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(r.bandwidth, 2);
        assert_eq!(
            bandwidth_lower_bound(&instance),
            1,
            "bound is not tight here"
        );
    }

    #[test]
    fn figure_one_tradeoff_reproduced() {
        // The Figure 1 phenomenon: minimum time (2 steps) needs 6 moves;
        // minimum bandwidth (4 moves) needs 3 steps.
        let instance = ocd_core::scenario::figure_one();
        let frontier = pareto_frontier(&instance, 1..=4, &MipOptions::default()).unwrap();
        assert_eq!(frontier.first(), Some(&(2, 6)), "min-time point");
        let best_bw = frontier.iter().map(|&(_, b)| b).min().unwrap();
        assert_eq!(best_bw, 4, "min-bandwidth point");
        let at3 = frontier.iter().find(|&&(t, _)| t == 3).unwrap();
        assert_eq!(at3.1, 4, "bandwidth optimum reached at 3 steps");
    }

    #[test]
    fn lp_relaxation_bound_sandwiches() {
        // deficiency ≤ LP relaxation ≤ IP optimum, with the LP strictly
        // stronger than deficiency when relays are forced.
        let g = classic::path(3, 1, false);
        let instance = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let lp = bandwidth_lp_lower_bound(&instance, 3).unwrap().unwrap();
        let ip = min_bandwidth_for_horizon(&instance, 3, &MipOptions::default())
            .unwrap()
            .unwrap()
            .bandwidth;
        let deficiency = ocd_core::bounds::bandwidth_lower_bound(&instance);
        assert_eq!(deficiency, 1);
        assert_eq!(lp, 2, "LP sees the forced relay");
        assert_eq!(ip, 2);
        assert!(deficiency <= lp && lp <= ip);
    }

    #[test]
    fn lp_relaxation_bound_infeasible_horizon() {
        let instance = single_file(classic::path(3, 1, false), 1, 0);
        assert!(bandwidth_lp_lower_bound(&instance, 1).unwrap().is_none());
        assert!(bandwidth_lp_lower_bound(&instance, 0).unwrap().is_none());
        assert!(bandwidth_lp_lower_bound(&instance, 2).unwrap().is_some());
    }

    #[test]
    fn lp_bound_never_exceeds_ip_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(55);
        let mut checked = 0;
        while checked < 8 {
            let n = rng.random_range(2..4usize);
            let m = rng.random_range(1..3usize);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_bool(0.7) {
                        g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                            .unwrap();
                    }
                }
            }
            let instance = Instance::builder(g, m)
                .have_set(0, TokenSet::full(m))
                .want_all_everywhere()
                .build()
                .unwrap();
            if !instance.is_satisfiable() {
                continue;
            }
            for horizon in 1..4usize {
                let lp = bandwidth_lp_lower_bound(&instance, horizon).unwrap();
                let ip =
                    min_bandwidth_for_horizon(&instance, horizon, &MipOptions::default()).unwrap();
                match (lp, ip) {
                    (Some(l), Some(r)) => assert!(l <= r.bandwidth, "LP {l} > IP {}", r.bandwidth),
                    (None, Some(r)) => {
                        panic!("LP infeasible but IP found bandwidth {}", r.bandwidth)
                    }
                    _ => {}
                }
            }
            checked += 1;
        }
    }

    #[test]
    fn hybrid_objective_interpolates_the_tradeoff() {
        use crate::bnb::BnbOptions;
        let instance = ocd_core::scenario::figure_one();
        // α = 1: stay at the time optimum, pay the bandwidth premium.
        let (tau, tight) = min_bandwidth_within_factor(
            &instance,
            1.0,
            &BnbOptions::default(),
            &MipOptions::default(),
        )
        .unwrap();
        assert_eq!((tau, tight.bandwidth), (2, 6));
        assert!(tight.schedule.makespan() <= 2);
        // α = 1.5: one extra step buys the bandwidth optimum.
        let (_, relaxed) = min_bandwidth_within_factor(
            &instance,
            1.5,
            &BnbOptions::default(),
            &MipOptions::default(),
        )
        .unwrap();
        assert_eq!(relaxed.bandwidth, 4);
        assert!(relaxed.schedule.makespan() <= 3);
        assert!(validate::replay(&instance, &relaxed.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    #[should_panic(expected = "must be at least 1")]
    fn hybrid_rejects_alpha_below_one() {
        let instance = ocd_core::scenario::figure_one();
        let _ = min_bandwidth_within_factor(
            &instance,
            0.5,
            &crate::bnb::BnbOptions::default(),
            &MipOptions::default(),
        );
    }

    #[test]
    fn ip_and_bnb_agree_on_feasibility() {
        use crate::bnb::{decide_focd, BnbOptions};
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let n = rng.random_range(2..4usize);
            let m = rng.random_range(1..3usize);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_bool(0.8) {
                        g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                            .unwrap();
                    }
                }
            }
            let instance = Instance::builder(g, m)
                .have_set(0, TokenSet::full(m))
                .want_all_everywhere()
                .build()
                .unwrap();
            if !instance.is_satisfiable() {
                continue;
            }
            for tau in 0..4usize {
                let ip_feasible = min_bandwidth_for_horizon(&instance, tau, &MipOptions::default())
                    .unwrap()
                    .is_some();
                let bnb_feasible = decide_focd(&instance, tau, &BnbOptions::default())
                    .unwrap()
                    .is_some();
                assert_eq!(
                    ip_feasible, bnb_feasible,
                    "trial {trial}, horizon {tau}: IP and B&B disagree"
                );
            }
        }
    }
}
