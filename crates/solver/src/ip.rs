//! The §3.4 time-indexed integer program.
//!
//! The paper extends the graph with a self-arc at every vertex (`E' = E ∪
//! {(v,v)}`) and creates a binary variable `x^i_{(u,v),t}` for each arc,
//! token and timestep. Self-arc variables model storage: `x^i_{(v,v),t} =
//! 1` means `v` holds `t` at time `i`. Constraints:
//!
//! - **initial**: `x^0_{(v,v),t}` fixed to `h(v)`;
//! - **possession**: a token may ride arc `(u,v)` (or persist on a
//!   self-arc) at step `i` only if `u` held or received it by step
//!   `i - 1`: `x^i_{(u,v),t} ≤ Σ_{(w,u) ∈ E'} x^{i-1}_{(w,u),t}`;
//! - **capacity**: `Σ_t x^i_{(u,v),t} ≤ c(u,v)` for real arcs (self-arcs
//!   have infinite capacity — "storage is not hard to model … simply add
//!   self-edges of infinite capacity", §2 fn. 1);
//! - **uplink/downlink** (when the instance carries
//!   [`NodeBudgets`](ocd_core::NodeBudgets)): per step and vertex,
//!   `Σ_{(v,·)} Σ_t x^i ≤ uplink(v)` and `Σ_{(·,v)} Σ_t x^i ≤
//!   downlink(v)`; unlimited budgets emit no row;
//! - **want**: `x^τ_{(v,v),t} ≥ 1` for `t ∈ w(v)`.
//!
//! The objective counts real-arc moves only, so the optimum is exactly
//! EOCD restricted to schedules of at most `τ` steps. Sweeping `τ`
//! traces the Figure 1 makespan/bandwidth trade-off, and
//! [`makespan_via_ip`] turns the same sweep into a certified optimal
//! makespan — the only exact makespan path that honors node budgets
//! (the combinatorial [`bnb`](crate::bnb) solver ignores them).
//!
//! The model is emitted **column-wise**: every constraint row is
//! declared up front ([`Problem::new_constraint`]) and each binary
//! variable then lands with its full coefficient column in one
//! [`Problem::add_column`] call, going straight into the CSC storage
//! the sparse revised simplex consumes — no dense row staging.

// Time-indexed variable tables read naturally with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::SolveError;
use ocd_core::span::{NoopSpans, SpanRecorder};
use ocd_core::{Instance, NodeBudgets, Schedule, Token, TokenSet};
use ocd_lp::{ConId, LpError, MipOptions, Problem, Relation, Sense, VarId, VarKind};

/// Result of an IP solve.
#[derive(Debug, Clone)]
pub struct IpResult {
    /// The decoded schedule (valid and successful for the instance).
    pub schedule: Schedule,
    /// Optimal bandwidth within the horizon (= `schedule.bandwidth()`).
    pub bandwidth: u64,
    /// Branch-and-bound nodes the MILP solver explored.
    pub mip_nodes: usize,
    /// Total simplex pivots across every node's LP solve.
    pub lp_iterations: u64,
}

/// The assembled §3.4 model: the MILP plus the move-variable table
/// needed to decode a solution back into a schedule.
struct IpModel {
    problem: Problem,
    /// `moves[i][edge][token]` for steps `i ∈ 1..=horizon`.
    moves: Vec<Vec<Vec<VarId>>>,
}

/// Builds the time-indexed program for `instance` at `horizon`.
/// Returns `None` when the horizon is 0 and some want is unmet (no
/// model can help; the caller reports infeasibility).
///
/// Rows are declared first, then every variable is emitted as one
/// sparse column. Row families, per step `i ∈ 1..=horizon`:
///
/// - `poss_move[i][e][t]` (≤ 0): `move_{i,e,t} − hold_{i−1,src,t} ≤ 0`.
///   At `i = 1` the hold side is the constant `h(src)`: the row becomes
///   `move ≤ 0` when the source starts without the token, and is
///   omitted entirely when it starts with it (`move ≤ 1` is implied).
/// - `poss_hold[i][v][t]`: `hold_{i,v,t} − hold_{i−1,v,t} −
///   Σ_{(u,v)} move_{i,(u,v),t} ≤ 0` (rhs 1 at `i = 1` when `h(v)`
///   holds the token).
/// - `cap[i][e]` (≤ c(e)): total tokens riding the arc this step.
/// - `up[i][v]` / `dn[i][v]`: node-budget rows, only for finite budgets
///   on vertices with incident arcs.
/// - `want[v][t]` (≥ 1) on `hold_{τ,v,t}`.
fn build_ip(instance: &Instance, horizon: usize) -> Option<IpModel> {
    let g = instance.graph();
    let n = g.node_count();
    let m = instance.num_tokens();
    let edges: Vec<_> = g.edge_ids().collect();
    let mut problem = Problem::new(Sense::Minimize);

    // Time 0 is fixed by h(v): a constant, not a variable.
    let hold0: Vec<Vec<bool>> = (0..n)
        .map(|v| {
            (0..m)
                .map(|t| instance.have(g.node(v)).contains(Token::new(t)))
                .collect()
        })
        .collect();

    // --- Declare every constraint row. ---
    // poss_hold[i][v][t], i ∈ 1..=horizon (index 0 unused).
    let mut poss_hold: Vec<Vec<Vec<ConId>>> = vec![Vec::new()];
    for i in 1..=horizon {
        let level: Vec<Vec<ConId>> = (0..n)
            .map(|v| {
                (0..m)
                    .map(|t| {
                        let rhs = if i == 1 && hold0[v][t] { 1.0 } else { 0.0 };
                        problem.new_constraint(Relation::Le, rhs)
                    })
                    .collect()
            })
            .collect();
        poss_hold.push(level);
    }
    // poss_move[i][e][t]; None when the i = 1 constant side makes the
    // row vacuous.
    let mut poss_move: Vec<Vec<Vec<Option<ConId>>>> = vec![Vec::new()];
    for i in 1..=horizon {
        let level: Vec<Vec<Option<ConId>>> = edges
            .iter()
            .map(|&e| {
                let src = g.edge(e).src.index();
                (0..m)
                    .map(|t| {
                        if i == 1 && hold0[src][t] {
                            None
                        } else {
                            Some(problem.new_constraint(Relation::Le, 0.0))
                        }
                    })
                    .collect()
            })
            .collect();
        poss_move.push(level);
    }
    // cap[i][e] on real arcs.
    let mut cap: Vec<Vec<ConId>> = vec![Vec::new()];
    for _i in 1..=horizon {
        cap.push(
            edges
                .iter()
                .map(|&e| problem.new_constraint(Relation::Le, f64::from(g.capacity(e))))
                .collect(),
        );
    }
    // Node-budget rows: only finite budgets on vertices that can
    // actually send (receive) anything.
    let budgets = instance.node_budgets();
    let budget_row = |problem: &mut Problem, limit: u32, degree: usize| -> Option<ConId> {
        (limit != NodeBudgets::UNLIMITED && degree > 0)
            .then(|| problem.new_constraint(Relation::Le, f64::from(limit)))
    };
    let mut up: Vec<Vec<Option<ConId>>> = vec![Vec::new()];
    let mut dn: Vec<Vec<Option<ConId>>> = vec![Vec::new()];
    for _i in 1..=horizon {
        let (mut ups, mut dns) = (Vec::with_capacity(n), Vec::with_capacity(n));
        for v in 0..n {
            let node = g.node(v);
            let (u_row, d_row) = match budgets {
                Some(b) => (
                    budget_row(&mut problem, b.uplink(v), g.out_edges(node).len()),
                    budget_row(&mut problem, b.downlink(v), g.in_edges(node).len()),
                ),
                None => (None, None),
            };
            ups.push(u_row);
            dns.push(d_row);
        }
        up.push(ups);
        dn.push(dns);
    }
    // want[v][t] at time τ.
    let mut want: Vec<Vec<Option<ConId>>> = vec![vec![None; m]; n];
    for v in 0..n {
        for t in 0..m {
            if instance.want(g.node(v)).contains(Token::new(t)) {
                if horizon == 0 {
                    if !hold0[v][t] {
                        return None;
                    }
                } else {
                    want[v][t] = Some(problem.new_constraint(Relation::Ge, 1.0));
                }
            }
        }
    }

    // --- Emit variables, one full column each. ---
    // hold_{i,v,t}: +1 in its own possession row; −1 in the level-(i+1)
    // possession rows it feeds (its vertex's hold row, and the move row
    // of every out-arc); +1 in the want row at the final level.
    for i in 1..=horizon {
        for v in 0..n {
            for t in 0..m {
                let mut entries = vec![(poss_hold[i][v][t], 1.0)];
                if i < horizon {
                    entries.push((poss_hold[i + 1][v][t], -1.0));
                    for e in g.out_edges(g.node(v)) {
                        if let Some(row) = poss_move[i + 1][e.index()][t] {
                            entries.push((row, -1.0));
                        }
                    }
                } else if let Some(row) = want[v][t] {
                    entries.push((row, 1.0));
                }
                problem.add_column(
                    format!("hold_{i}_{v}_{t}"),
                    VarKind::Integer,
                    0.0,
                    1.0,
                    0.0,
                    entries,
                );
            }
        }
    }
    // move_{i,e,t}: +1 in its own possession row (when present), −1 in
    // the destination's hold row, +1 in the arc-capacity row and any
    // node-budget rows. Objective 1 — the bandwidth count.
    let mut moves: Vec<Vec<Vec<VarId>>> = vec![Vec::new()];
    for i in 1..=horizon {
        let mut per_edge = Vec::with_capacity(edges.len());
        for (ei, &e) in edges.iter().enumerate() {
            let arc = g.edge(e);
            let (src, dst) = (arc.src.index(), arc.dst.index());
            let mut row = Vec::with_capacity(m);
            for t in 0..m {
                let mut entries = Vec::with_capacity(5);
                if let Some(r) = poss_move[i][ei][t] {
                    entries.push((r, 1.0));
                }
                entries.push((poss_hold[i][dst][t], -1.0));
                entries.push((cap[i][ei], 1.0));
                if let Some(r) = up[i][src] {
                    entries.push((r, 1.0));
                }
                if let Some(r) = dn[i][dst] {
                    entries.push((r, 1.0));
                }
                row.push(problem.add_column(
                    format!("move_{i}_{}_{t}", e.index()),
                    VarKind::Integer,
                    0.0,
                    1.0,
                    1.0,
                    entries,
                ));
            }
            per_edge.push(row);
        }
        moves.push(per_edge);
    }
    Some(IpModel { problem, moves })
}

/// The raw §3.4 MILP at `horizon` without solving it — for relaxation
/// experiments and benchmarks that want to time
/// [`Problem::solve_lp`] (sparse revised simplex) against
/// [`Problem::solve_lp_dense`] (the retained dense reference) on the
/// same model. `None` when the horizon is 0 and some want is unmet.
#[must_use]
pub fn ip_problem(instance: &Instance, horizon: usize) -> Option<Problem> {
    build_ip(instance, horizon).map(|m| m.problem)
}

/// Minimum-bandwidth successful schedule using at most `horizon`
/// timesteps, or `Ok(None)` if no successful schedule of that length
/// exists.
///
/// # Errors
///
/// [`SolveError::Mip`] if the MILP solver hits a resource limit.
pub fn min_bandwidth_for_horizon(
    instance: &Instance,
    horizon: usize,
    options: &MipOptions,
) -> Result<Option<IpResult>, SolveError> {
    min_bandwidth_for_horizon_with_spans(instance, horizon, options, &mut NoopSpans)
}

/// [`min_bandwidth_for_horizon`] with a [`SpanRecorder`] attached: the
/// solve lands as a `solver.ip.horizon` span (counter: `tau`) wrapping
/// the MILP's `bnb.*` search-telemetry spans.
///
/// # Errors
///
/// Same contract as [`min_bandwidth_for_horizon`].
pub fn min_bandwidth_for_horizon_with_spans<S: SpanRecorder>(
    instance: &Instance,
    horizon: usize,
    options: &MipOptions,
    spans: &mut S,
) -> Result<Option<IpResult>, SolveError> {
    let Some(IpModel { problem, moves }) = build_ip(instance, horizon) else {
        return Ok(None);
    };

    let span = spans.open("solver.ip.horizon");
    spans.attach(span, "tau", horizon as u64);
    let solved = problem.solve_mip_with_spans(options, spans);
    spans.close(span);
    match solved {
        Ok(sol) => {
            let schedule = decode_schedule(instance, horizon, &moves, &sol);
            Ok(Some(IpResult {
                bandwidth: schedule.bandwidth(),
                schedule,
                mip_nodes: sol.nodes_explored,
                lp_iterations: sol.lp_iterations,
            }))
        }
        Err(LpError::Infeasible) => Ok(None),
        Err(e) => Err(SolveError::Mip(e.to_string())),
    }
}

/// Reads the move variables of a MILP solution back into a trimmed
/// [`Schedule`].
fn decode_schedule(
    instance: &Instance,
    horizon: usize,
    moves: &[Vec<Vec<VarId>>],
    sol: &ocd_lp::MipSolution,
) -> Schedule {
    let g = instance.graph();
    let m = instance.num_tokens();
    let mut schedule = Schedule::new();
    for i in 1..=horizon {
        let mut sends = Vec::new();
        for (ei, e) in g.edge_ids().enumerate() {
            let tokens: TokenSet = TokenSet::from_tokens(
                m,
                (0..m)
                    .filter(|&t| sol.value_int(moves[i][ei][t]) == 1)
                    .map(Token::new),
            );
            if !tokens.is_empty() {
                sends.push((e, tokens));
            }
        }
        schedule.push_step(sends);
    }
    schedule.trimmed()
}

/// The paper's §3.4 *hybrid* goal ("search for a bandwidth-optimal
/// solution subject to the constraint that the time be no more than
/// some constant factor of the optimal time" — listed as ongoing work):
/// solves FOCD exactly for the optimal makespan `τ*`, then minimizes
/// bandwidth within the horizon `⌊α·τ*⌋`.
///
/// Returns `(τ*, result)` where the result's schedule has makespan
/// ≤ `⌊α·τ*⌋` and minimum bandwidth among such schedules.
///
/// # Errors
///
/// Propagates the FOCD solver's errors and [`SolveError::Mip`]; the
/// hybrid horizon is feasible by construction (it contains `τ*`).
///
/// # Panics
///
/// Panics if `alpha < 1.0` (the constraint would exclude the optimum).
pub fn min_bandwidth_within_factor(
    instance: &Instance,
    alpha: f64,
    bnb_options: &crate::bnb::BnbOptions,
    mip_options: &MipOptions,
) -> Result<(usize, IpResult), SolveError> {
    assert!(alpha >= 1.0, "time factor α = {alpha} must be at least 1");
    let exact = crate::bnb::solve_focd(instance, bnb_options)?;
    let horizon = ((exact.makespan as f64) * alpha).floor() as usize;
    let result = min_bandwidth_for_horizon(instance, horizon, mip_options)?
        .expect("a horizon ≥ the exact optimum is feasible");
    Ok((exact.makespan, result))
}

/// A certified exact-makespan result from [`makespan_via_ip`].
#[derive(Debug, Clone)]
pub struct MakespanCertificate {
    /// The provably optimal makespan: the IP is feasible at this horizon
    /// and was proven infeasible at every shorter one.
    pub makespan: usize,
    /// Witness solve at the optimal horizon. With default [`MipOptions`]
    /// its schedule also has minimum bandwidth among makespan-optimal
    /// schedules; with a large `absolute_gap` it is merely feasible.
    pub result: IpResult,
    /// Horizons below `makespan` that were certified infeasible (the
    /// combinatorial radius and counting lower bounds dispose of the
    /// rest for free).
    pub infeasible_horizons: usize,
}

/// Outcome of the exact-makespan sweep.
#[derive(Debug, Clone)]
pub enum MakespanOutcome {
    /// Optimal makespan found and certified.
    Certified(MakespanCertificate),
    /// The MILP hit its node limit at `stalled_at` before deciding it.
    /// Every horizon `< stalled_at` is proven infeasible, so `stalled_at`
    /// is still a valid makespan **lower bound**; pairing it with any
    /// heuristic schedule's makespan gives a reported gap.
    ResourceLimit {
        /// The first undecided horizon; all below it are infeasible.
        stalled_at: usize,
    },
    /// Every horizon `≤ max_horizon` is proven infeasible.
    InfeasibleUpTo(usize),
    /// No schedule of any length can succeed (wanted tokens unreachable).
    Unsatisfiable,
}

/// Exact optimal makespan via the §3.4 IP: sweeps horizons upward from
/// the combinatorial lower bounds — the radius-based
/// [`makespan_lower_bound`](ocd_core::bounds) joined with the
/// budget-aware
/// [`counting_makespan_lower_bound`](ocd_core::bounds), whose doubling
/// argument is what keeps uplink-limited sweeps from grinding through
/// horizons only an exhaustive branch-and-bound could refute — using
/// the LP relaxation as an infeasibility prefilter (an infeasible
/// relaxation certifies the horizon infeasible without any branching)
/// and the MILP to decide the rest. The first feasible horizon is the
/// optimum, certified by the chain of infeasibility proofs below it.
///
/// This is the only *exact* makespan path that honors
/// [`NodeBudgets`](ocd_core::NodeBudgets) — the combinatorial
/// [`bnb`](crate::bnb) solver ignores them. Pass a large
/// `absolute_gap` in `options` to stop each feasible MILP at its first
/// incumbent (pure feasibility mode — the makespan certificate is
/// unaffected, only the witness schedule's bandwidth optimality).
///
/// # Errors
///
/// [`SolveError::Mip`] only on unexpected simplex failures; node-limit
/// exhaustion is reported as [`MakespanOutcome::ResourceLimit`], not an
/// error.
pub fn makespan_via_ip(
    instance: &Instance,
    max_horizon: usize,
    options: &MipOptions,
) -> Result<MakespanOutcome, SolveError> {
    makespan_via_ip_with_spans(instance, max_horizon, options, &mut NoopSpans)
}

/// [`makespan_via_ip`] with a [`SpanRecorder`] attached: every horizon
/// attempt lands as a `solver.ip.horizon` span (counter: `tau`)
/// wrapping the MILP's `bnb.*` search-telemetry spans; horizons the LP
/// relaxation refutes close without children.
///
/// # Errors
///
/// Same contract as [`makespan_via_ip`].
pub fn makespan_via_ip_with_spans<S: SpanRecorder>(
    instance: &Instance,
    max_horizon: usize,
    options: &MipOptions,
    spans: &mut S,
) -> Result<MakespanOutcome, SolveError> {
    let lb = ocd_core::bounds::makespan_lower_bound(instance)
        .max(ocd_core::bounds::counting_makespan_lower_bound(instance));
    if lb == usize::MAX {
        return Ok(MakespanOutcome::Unsatisfiable);
    }
    let mut infeasible_horizons = 0;
    for tau in lb..=max_horizon {
        let Some(model) = build_ip(instance, tau) else {
            // Horizon 0 with unmet wants: infeasible by construction.
            infeasible_horizons += 1;
            continue;
        };
        let span = spans.open("solver.ip.horizon");
        spans.attach(span, "tau", tau as u64);
        // LP-relaxation prefilter: most short horizons die here, without
        // branching.
        match model.problem.solve_lp() {
            Ok(_) => {}
            Err(LpError::Infeasible) => {
                infeasible_horizons += 1;
                spans.close(span);
                continue;
            }
            Err(e) => {
                spans.close(span);
                return Err(SolveError::Mip(e.to_string()));
            }
        }
        let solved = model.problem.solve_mip_with_spans(options, spans);
        spans.close(span);
        match solved {
            Ok(sol) => {
                let schedule = decode_schedule(instance, tau, &model.moves, &sol);
                return Ok(MakespanOutcome::Certified(MakespanCertificate {
                    makespan: tau,
                    result: IpResult {
                        bandwidth: schedule.bandwidth(),
                        schedule,
                        mip_nodes: sol.nodes_explored,
                        lp_iterations: sol.lp_iterations,
                    },
                    infeasible_horizons,
                }));
            }
            Err(LpError::Infeasible) => {
                infeasible_horizons += 1;
            }
            Err(LpError::NodeLimit) => {
                return Ok(MakespanOutcome::ResourceLimit { stalled_at: tau });
            }
            Err(e) => return Err(SolveError::Mip(e.to_string())),
        }
    }
    Ok(MakespanOutcome::InfeasibleUpTo(max_horizon))
}

/// Bandwidth lower bound from the **LP relaxation** of the §3.4 IP at
/// the given horizon: drop integrality and take the ceiling of the
/// optimum. Strictly stronger than the deficiency count whenever relays
/// are unavoidable, and much cheaper than the full MILP — the bound the
/// paper wished for when it asked for "calculated upper/lower bounds …
/// exact or approximated".
///
/// Returns `Ok(None)` if even the relaxation is infeasible at this
/// horizon (which implies the IP is too).
///
/// # Errors
///
/// [`SolveError::Mip`] on simplex resource failures.
pub fn bandwidth_lp_lower_bound(
    instance: &Instance,
    horizon: usize,
) -> Result<Option<u64>, SolveError> {
    let Some(model) = build_ip(instance, horizon) else {
        return Ok(None); // horizon 0 with unmet wants
    };
    match model.problem.solve_lp() {
        Ok(sol) => Ok(Some(sol.objective.ceil().max(0.0) as u64)),
        Err(LpError::Infeasible) => Ok(None),
        Err(e) => Err(SolveError::Mip(e.to_string())),
    }
}

/// Sweeps horizons `τ = lo..=hi`, reporting for each satisfiable horizon
/// the minimum bandwidth — the makespan/bandwidth Pareto curve of
/// Figure 1. Infeasible horizons yield no entry.
///
/// # Errors
///
/// Propagates MILP resource failures.
pub fn pareto_frontier(
    instance: &Instance,
    horizons: std::ops::RangeInclusive<usize>,
    options: &MipOptions,
) -> Result<Vec<(usize, u64)>, SolveError> {
    let mut out = Vec::new();
    for tau in horizons {
        if let Some(r) = min_bandwidth_for_horizon(instance, tau, options)? {
            out.push((tau, r.bandwidth));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_core::bounds::bandwidth_lower_bound;
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use ocd_graph::DiGraph;

    fn tok(i: usize) -> Token {
        Token::new(i)
    }

    #[test]
    fn single_hop_ip() {
        let instance = single_file(classic::path(2, 1, false), 1, 0);
        let r = min_bandwidth_for_horizon(&instance, 1, &MipOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(r.bandwidth, 1);
        assert!(validate::replay(&instance, &r.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn horizon_too_short_is_none() {
        let instance = single_file(classic::path(3, 1, false), 1, 0);
        assert!(
            min_bandwidth_for_horizon(&instance, 1, &MipOptions::default())
                .unwrap()
                .is_none()
        );
        assert!(
            min_bandwidth_for_horizon(&instance, 2, &MipOptions::default())
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn zero_horizon_trivial_instance() {
        let g = classic::path(2, 1, true);
        let instance = Instance::builder(g, 1).have(0, [tok(0)]).build().unwrap();
        let r = min_bandwidth_for_horizon(&instance, 0, &MipOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(r.bandwidth, 0);
    }

    #[test]
    fn zero_horizon_nontrivial_is_none() {
        let instance = single_file(classic::path(2, 1, false), 1, 0);
        assert!(
            min_bandwidth_for_horizon(&instance, 0, &MipOptions::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn ip_matches_bandwidth_lower_bound_when_tight() {
        // Star with ample capacity: every deficiency costs exactly one
        // move, so IP bandwidth = lower bound.
        let instance = single_file(classic::star(4, 5, false), 3, 0);
        let r = min_bandwidth_for_horizon(&instance, 2, &MipOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(r.bandwidth, bandwidth_lower_bound(&instance));
        let replay = validate::replay(&instance, &r.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn relay_costs_extra_bandwidth() {
        // 0 -> 1 -> 2, only vertex 2 wants the token: the relay through 1
        // makes bandwidth 2 despite a single deficiency.
        let g = classic::path(3, 1, false);
        let instance = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let r = min_bandwidth_for_horizon(&instance, 3, &MipOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(r.bandwidth, 2);
        assert_eq!(
            bandwidth_lower_bound(&instance),
            1,
            "bound is not tight here"
        );
    }

    #[test]
    fn figure_one_tradeoff_reproduced() {
        // The Figure 1 phenomenon: minimum time (2 steps) needs 6 moves;
        // minimum bandwidth (4 moves) needs 3 steps.
        let instance = ocd_core::scenario::figure_one();
        let frontier = pareto_frontier(&instance, 1..=4, &MipOptions::default()).unwrap();
        assert_eq!(frontier.first(), Some(&(2, 6)), "min-time point");
        let best_bw = frontier.iter().map(|&(_, b)| b).min().unwrap();
        assert_eq!(best_bw, 4, "min-bandwidth point");
        let at3 = frontier.iter().find(|&&(t, _)| t == 3).unwrap();
        assert_eq!(at3.1, 4, "bandwidth optimum reached at 3 steps");
    }

    #[test]
    fn lp_relaxation_bound_sandwiches() {
        // deficiency ≤ LP relaxation ≤ IP optimum, with the LP strictly
        // stronger than deficiency when relays are forced.
        let g = classic::path(3, 1, false);
        let instance = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(2, [tok(0)])
            .build()
            .unwrap();
        let lp = bandwidth_lp_lower_bound(&instance, 3).unwrap().unwrap();
        let ip = min_bandwidth_for_horizon(&instance, 3, &MipOptions::default())
            .unwrap()
            .unwrap()
            .bandwidth;
        let deficiency = ocd_core::bounds::bandwidth_lower_bound(&instance);
        assert_eq!(deficiency, 1);
        assert_eq!(lp, 2, "LP sees the forced relay");
        assert_eq!(ip, 2);
        assert!(deficiency <= lp && lp <= ip);
    }

    #[test]
    fn lp_relaxation_bound_infeasible_horizon() {
        let instance = single_file(classic::path(3, 1, false), 1, 0);
        assert!(bandwidth_lp_lower_bound(&instance, 1).unwrap().is_none());
        assert!(bandwidth_lp_lower_bound(&instance, 0).unwrap().is_none());
        assert!(bandwidth_lp_lower_bound(&instance, 2).unwrap().is_some());
    }

    #[test]
    fn lp_bound_never_exceeds_ip_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(55);
        let mut checked = 0;
        while checked < 8 {
            let n = rng.random_range(2..4usize);
            let m = rng.random_range(1..3usize);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_bool(0.7) {
                        g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                            .unwrap();
                    }
                }
            }
            let instance = Instance::builder(g, m)
                .have_set(0, TokenSet::full(m))
                .want_all_everywhere()
                .build()
                .unwrap();
            if !instance.is_satisfiable() {
                continue;
            }
            for horizon in 1..4usize {
                let lp = bandwidth_lp_lower_bound(&instance, horizon).unwrap();
                let ip =
                    min_bandwidth_for_horizon(&instance, horizon, &MipOptions::default()).unwrap();
                match (lp, ip) {
                    (Some(l), Some(r)) => assert!(l <= r.bandwidth, "LP {l} > IP {}", r.bandwidth),
                    (None, Some(r)) => {
                        panic!("LP infeasible but IP found bandwidth {}", r.bandwidth)
                    }
                    _ => {}
                }
            }
            checked += 1;
        }
    }

    #[test]
    fn hybrid_objective_interpolates_the_tradeoff() {
        use crate::bnb::BnbOptions;
        let instance = ocd_core::scenario::figure_one();
        // α = 1: stay at the time optimum, pay the bandwidth premium.
        let (tau, tight) = min_bandwidth_within_factor(
            &instance,
            1.0,
            &BnbOptions::default(),
            &MipOptions::default(),
        )
        .unwrap();
        assert_eq!((tau, tight.bandwidth), (2, 6));
        assert!(tight.schedule.makespan() <= 2);
        // α = 1.5: one extra step buys the bandwidth optimum.
        let (_, relaxed) = min_bandwidth_within_factor(
            &instance,
            1.5,
            &BnbOptions::default(),
            &MipOptions::default(),
        )
        .unwrap();
        assert_eq!(relaxed.bandwidth, 4);
        assert!(relaxed.schedule.makespan() <= 3);
        assert!(validate::replay(&instance, &relaxed.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    #[should_panic(expected = "must be at least 1")]
    fn hybrid_rejects_alpha_below_one() {
        let instance = ocd_core::scenario::figure_one();
        let _ = min_bandwidth_within_factor(
            &instance,
            0.5,
            &crate::bnb::BnbOptions::default(),
            &MipOptions::default(),
        );
    }

    #[test]
    fn makespan_via_ip_matches_bnb_on_random_instances() {
        use crate::bnb::{solve_focd, BnbOptions};
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(9);
        let mut checked = 0;
        while checked < 6 {
            let n = rng.random_range(2..5usize);
            let m = rng.random_range(1..3usize);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_bool(0.6) {
                        g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                            .unwrap();
                    }
                }
            }
            let instance = Instance::builder(g, m)
                .have_set(0, TokenSet::full(m))
                .want_all_everywhere()
                .build()
                .unwrap();
            if !instance.is_satisfiable() {
                continue;
            }
            let exact = solve_focd(&instance, &BnbOptions::default()).unwrap();
            let outcome =
                makespan_via_ip(&instance, exact.makespan + 2, &MipOptions::default()).unwrap();
            let MakespanOutcome::Certified(cert) = outcome else {
                panic!("expected certificate, got {outcome:?}");
            };
            assert_eq!(cert.makespan, exact.makespan, "IP vs B&B makespan");
            assert_eq!(cert.result.schedule.makespan(), cert.makespan);
            assert!(validate::replay(&instance, &cert.result.schedule)
                .unwrap()
                .is_successful());
            checked += 1;
        }
    }

    #[test]
    fn makespan_via_ip_honors_uplink_budgets() {
        // Star, center holds the token, ample arc capacity. Unbudgeted:
        // everything ships in one step. Uplink budget 1 at the center:
        // one leaf per step, makespan = number of leaves.
        let g = classic::star(4, 5, false);
        let free = single_file(g.clone(), 1, 0);
        let MakespanOutcome::Certified(cert) =
            makespan_via_ip(&free, 8, &MipOptions::default()).unwrap()
        else {
            panic!("unbudgeted star must certify");
        };
        assert_eq!(cert.makespan, 1);

        let budgeted = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want_all_everywhere()
            .node_budgets(NodeBudgets::uplink_only(4, 1))
            .build()
            .unwrap();
        let MakespanOutcome::Certified(cert) =
            makespan_via_ip(&budgeted, 8, &MipOptions::default()).unwrap()
        else {
            panic!("budgeted star must certify");
        };
        assert_eq!(cert.makespan, 3, "uplink 1 serializes the three leaves");
        assert_eq!(
            cert.infeasible_horizons, 0,
            "counting bound starts the sweep at the optimum — no IP infeasibility proofs"
        );
        let replay = validate::replay(&budgeted, &cert.result.schedule).unwrap();
        assert!(replay.is_successful());
    }

    #[test]
    fn makespan_via_ip_edge_outcomes() {
        // Unsatisfiable: wanted token unreachable (no arcs at all).
        let g = DiGraph::with_nodes(2);
        let unsat = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        assert!(matches!(
            makespan_via_ip(&unsat, 5, &MipOptions::default()).unwrap(),
            MakespanOutcome::Unsatisfiable
        ));

        // Horizon cap below the optimum: infeasible up to the cap.
        let inst = single_file(classic::path(3, 1, false), 1, 0);
        assert!(matches!(
            makespan_via_ip(&inst, 1, &MipOptions::default()).unwrap(),
            MakespanOutcome::InfeasibleUpTo(1)
        ));

        // Node limit 0: the very first MILP round trips the limit.
        let opts = MipOptions {
            node_limit: 0,
            ..MipOptions::default()
        };
        assert!(matches!(
            makespan_via_ip(&inst, 4, &opts).unwrap(),
            MakespanOutcome::ResourceLimit { stalled_at: 2 }
        ));
    }

    #[test]
    fn ip_and_bnb_agree_on_feasibility() {
        use crate::bnb::{decide_focd, BnbOptions};
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let n = rng.random_range(2..4usize);
            let m = rng.random_range(1..3usize);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_bool(0.8) {
                        g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                            .unwrap();
                    }
                }
            }
            let instance = Instance::builder(g, m)
                .have_set(0, TokenSet::full(m))
                .want_all_everywhere()
                .build()
                .unwrap();
            if !instance.is_satisfiable() {
                continue;
            }
            for tau in 0..4usize {
                let ip_feasible = min_bandwidth_for_horizon(&instance, tau, &MipOptions::default())
                    .unwrap()
                    .is_some();
                let bnb_feasible = decide_focd(&instance, tau, &BnbOptions::default())
                    .unwrap()
                    .is_some();
                assert_eq!(
                    ip_feasible, bnb_feasible,
                    "trial {trial}, horizon {tau}: IP and B&B disagree"
                );
            }
        }
    }
}
