//! Exact FOCD (minimum makespan) by branch and bound.
//!
//! Iterative deepening on the makespan: for each candidate `τ` starting
//! at the admissible lower bound, a depth-first search asks whether a
//! successful schedule of exactly `τ` steps exists. Within a timestep
//! the search enumerates, arc by arc, every subset of *useful* tokens
//! (tokens the destination lacks and the source holds) of maximal size —
//! for makespan, sending fewer tokens than an arc allows can never help,
//! so only the *choice* of tokens branches. Pruning:
//!
//! - the `ocd-core::bounds::remaining_makespan` admissible bound against
//!   the remaining budget;
//! - a transposition table keyed by the full possession state,
//!   remembering the largest budget that already failed from that state.
//!
//! Practical for the paper's "small graphs with few files" regime
//! (roughly `n·m ≲ 25` with moderate capacities).

use crate::SolveError;
use ocd_core::bounds::remaining_makespan;
use ocd_core::span::{NoopSpans, SpanRecorder};
use ocd_core::{Instance, Schedule, Timestep, Token, TokenSet};
use ocd_graph::EdgeId;
use std::collections::HashMap;

/// Tuning for [`solve_focd`].
#[derive(Debug, Clone)]
pub struct BnbOptions {
    /// Largest makespan to try before giving up.
    pub max_makespan: usize,
    /// Search node budget (timestep-enumeration branches).
    pub node_limit: u64,
}

impl Default for BnbOptions {
    fn default() -> Self {
        BnbOptions {
            max_makespan: 64,
            node_limit: 50_000_000,
        }
    }
}

/// Result of the exact search.
#[derive(Debug, Clone)]
pub struct BnbResult {
    /// An optimal (minimum-makespan) successful schedule.
    pub schedule: Schedule,
    /// Its makespan (`schedule.makespan()`).
    pub makespan: usize,
    /// Branches explored across all deepening iterations.
    pub nodes: u64,
}

/// Decision procedure for DFOCD (§3.2): is there a successful schedule
/// of at most `tau` steps? Returns it if so.
///
/// # Errors
///
/// [`SolveError::NodeLimit`] if the budget is exhausted; unsatisfiable
/// and over-horizon cases return `Ok(None)`.
pub fn decide_focd(
    instance: &Instance,
    tau: usize,
    options: &BnbOptions,
) -> Result<Option<Schedule>, SolveError> {
    let mut search = Search::new(instance, options.node_limit);
    let mut possession = instance.have_all().to_vec();
    let result = search.dfs(&mut possession, tau)?;
    Ok(result.map(|steps| {
        let mut schedule = Schedule::new();
        for step in steps {
            schedule.push_timestep(step);
        }
        schedule
    }))
}

/// Solves FOCD exactly: the minimum makespan and a witnessing schedule.
///
/// # Errors
///
/// [`SolveError::Unsatisfiable`] if no schedule can ever succeed,
/// [`SolveError::HorizonExceeded`] past `options.max_makespan`,
/// [`SolveError::NodeLimit`] if the budget runs out.
pub fn solve_focd(instance: &Instance, options: &BnbOptions) -> Result<BnbResult, SolveError> {
    solve_focd_with_spans(instance, options, &mut NoopSpans)
}

/// [`solve_focd`] with a [`SpanRecorder`] attached: every
/// iterative-deepening horizon attempt lands as a
/// `solver.focd.horizon` span carrying `tau` and `nodes` (branches
/// explored at that horizon) counters — the search timeline of the
/// combinatorial solver. (The inner DFS visits millions of nodes and
/// is deliberately *not* per-node instrumented.)
///
/// # Errors
///
/// Same contract as [`solve_focd`].
pub fn solve_focd_with_spans<S: SpanRecorder>(
    instance: &Instance,
    options: &BnbOptions,
    spans: &mut S,
) -> Result<BnbResult, SolveError> {
    if !instance.is_satisfiable() {
        return Err(SolveError::Unsatisfiable);
    }
    let lower = remaining_makespan(instance.graph(), instance.have_all(), instance.want_all());
    if lower == usize::MAX {
        return Err(SolveError::Unsatisfiable);
    }
    let mut total_nodes = 0u64;
    for tau in lower..=options.max_makespan {
        let span = spans.open("solver.focd.horizon");
        spans.attach(span, "tau", tau as u64);
        let mut search = Search::new(instance, options.node_limit.saturating_sub(total_nodes));
        let mut possession = instance.have_all().to_vec();
        let found = search.dfs(&mut possession, tau);
        total_nodes += search.nodes;
        spans.attach(span, "nodes", search.nodes);
        spans.close(span);
        match found {
            Ok(Some(steps)) => {
                let mut schedule = Schedule::new();
                for step in steps {
                    schedule.push_timestep(step);
                }
                debug_assert_eq!(schedule.makespan(), tau);
                return Ok(BnbResult {
                    makespan: tau,
                    schedule,
                    nodes: total_nodes,
                });
            }
            Ok(None) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(SolveError::HorizonExceeded {
        horizon: options.max_makespan,
    })
}

struct Search<'a> {
    instance: &'a Instance,
    /// For each state (possession vector), the largest remaining budget
    /// that already failed; states are keyed by their token-set blocks.
    failed: HashMap<Vec<TokenSet>, usize>,
    nodes: u64,
    node_limit: u64,
}

impl<'a> Search<'a> {
    fn new(instance: &'a Instance, node_limit: u64) -> Self {
        Search {
            instance,
            failed: HashMap::new(),
            nodes: 0,
            node_limit,
        }
    }

    fn satisfied(&self, possession: &[TokenSet]) -> bool {
        self.instance
            .want_all()
            .iter()
            .zip(possession)
            .all(|(w, p)| w.is_subset(p))
    }

    /// Is a success reachable in at most `budget` further steps?
    fn dfs(
        &mut self,
        possession: &mut Vec<TokenSet>,
        budget: usize,
    ) -> Result<Option<Vec<Timestep>>, SolveError> {
        if self.satisfied(possession) {
            return Ok(Some(Vec::new()));
        }
        if budget == 0 {
            return Ok(None);
        }
        let bound = remaining_makespan(self.instance.graph(), possession, self.instance.want_all());
        if bound > budget {
            return Ok(None);
        }
        if let Some(&failed_budget) = self.failed.get(possession.as_slice()) {
            if budget <= failed_budget {
                return Ok(None);
            }
        }
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return Err(SolveError::NodeLimit);
        }

        // Enumerate maximal useful timesteps arc by arc.
        let g = self.instance.graph();
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let mut chosen: Vec<(EdgeId, TokenSet)> = Vec::new();
        let result = self.enumerate_step(&edges, 0, possession, &mut chosen, budget)?;
        if result.is_none() {
            let entry = self.failed.entry(possession.clone()).or_insert(0);
            *entry = (*entry).max(budget);
        }
        Ok(result)
    }

    /// Chooses the send set for `edges[idx..]`, then recurses one
    /// timestep deeper.
    fn enumerate_step(
        &mut self,
        edges: &[EdgeId],
        idx: usize,
        possession: &mut Vec<TokenSet>,
        chosen: &mut Vec<(EdgeId, TokenSet)>,
        budget: usize,
    ) -> Result<Option<Vec<Timestep>>, SolveError> {
        let g = self.instance.graph();
        if idx == edges.len() {
            // Apply the step and descend.
            let step = Timestep::from_sends(chosen.iter().cloned());
            if step.is_empty() {
                // A maximal step with no moves means nothing useful can
                // move; if unsatisfied this branch is dead (possession
                // can never change again).
                return Ok(None);
            }
            let mut next = possession.clone();
            for (e, tokens) in step.sends() {
                next[g.edge(e).dst.index()].union_with(tokens);
            }
            if next == *possession {
                return Ok(None);
            }
            return match self.dfs(&mut next, budget - 1)? {
                Some(mut rest) => {
                    rest.insert(0, step);
                    Ok(Some(rest))
                }
                None => Ok(None),
            };
        }
        let e = edges[idx];
        let arc = g.edge(e);
        let useful = possession[arc.src.index()].difference(&possession[arc.dst.index()]);
        let cap = arc.capacity as usize;
        if useful.is_empty() {
            return self.enumerate_step(edges, idx + 1, possession, chosen, budget);
        }
        if useful.len() <= cap {
            // Send everything useful: the unique maximal choice.
            chosen.push((e, useful));
            let r = self.enumerate_step(edges, idx + 1, possession, chosen, budget)?;
            chosen.pop();
            return Ok(r);
        }
        // Branch over all cap-subsets of the useful set.
        let tokens: Vec<Token> = useful.iter().collect();
        let mut subset: Vec<Token> = Vec::with_capacity(cap);
        self.enumerate_subsets(
            edges,
            idx,
            possession,
            chosen,
            budget,
            &tokens,
            0,
            &mut subset,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_subsets(
        &mut self,
        edges: &[EdgeId],
        idx: usize,
        possession: &mut Vec<TokenSet>,
        chosen: &mut Vec<(EdgeId, TokenSet)>,
        budget: usize,
        tokens: &[Token],
        start: usize,
        subset: &mut Vec<Token>,
    ) -> Result<Option<Vec<Timestep>>, SolveError> {
        let arc = self.instance.graph().edge(edges[idx]);
        let cap = arc.capacity as usize;
        if subset.len() == cap {
            chosen.push((
                edges[idx],
                TokenSet::from_tokens(self.instance.num_tokens(), subset.iter().copied()),
            ));
            let r = self.enumerate_step(edges, idx + 1, possession, chosen, budget)?;
            chosen.pop();
            return Ok(r);
        }
        // Not enough tokens left to fill the subset: impossible branch
        // (maximality requires exactly cap here since |useful| > cap).
        let needed = cap - subset.len();
        for pick in start..=tokens.len().saturating_sub(needed) {
            subset.push(tokens[pick]);
            let r = self.enumerate_subsets(
                edges,
                idx,
                possession,
                chosen,
                budget,
                tokens,
                pick + 1,
                subset,
            )?;
            subset.pop();
            if r.is_some() {
                return Ok(r);
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_core::bounds::makespan_lower_bound;
    use ocd_core::scenario::single_file;
    use ocd_core::validate;
    use ocd_graph::generate::classic;
    use ocd_graph::DiGraph;

    fn tok(i: usize) -> Token {
        Token::new(i)
    }

    #[test]
    fn single_hop_single_token() {
        let instance = single_file(classic::path(2, 1, false), 1, 0);
        let r = solve_focd(&instance, &BnbOptions::default()).unwrap();
        assert_eq!(r.makespan, 1);
        assert!(validate::replay(&instance, &r.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn path_relay_takes_distance_steps() {
        let instance = single_file(classic::path(4, 2, false), 1, 0);
        let r = solve_focd(&instance, &BnbOptions::default()).unwrap();
        assert_eq!(r.makespan, 3);
    }

    #[test]
    fn capacity_bottleneck() {
        // 4 tokens over a capacity-2 arc: exactly 2 steps.
        let instance = single_file(classic::path(2, 2, false), 4, 0);
        let r = solve_focd(&instance, &BnbOptions::default()).unwrap();
        assert_eq!(r.makespan, 2);
    }

    #[test]
    fn duplication_beats_flow_intuition() {
        // Star: source duplicates one token to 3 leaves in one step.
        let instance = single_file(classic::star(4, 1, false), 1, 0);
        let r = solve_focd(&instance, &BnbOptions::default()).unwrap();
        assert_eq!(r.makespan, 1);
        assert_eq!(r.schedule.bandwidth(), 3);
    }

    #[test]
    fn figure_one_minimum_time_is_two_steps() {
        // Figure 1: the minimum-time schedule takes 2 timesteps (and,
        // per the paper, spends 6 bandwidth; see the IP tests for the
        // bandwidth side of the trade-off).
        let instance = ocd_core::scenario::figure_one();
        let r = solve_focd(&instance, &BnbOptions::default()).unwrap();
        assert_eq!(r.makespan, 2);
        assert!(validate::replay(&instance, &r.schedule)
            .unwrap()
            .is_successful());
    }

    #[test]
    fn optimum_never_below_admissible_bound() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..15 {
            let n = rng.random_range(2..5usize);
            let m = rng.random_range(1..4usize);
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_bool(0.7) {
                        g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                            .unwrap();
                    }
                }
            }
            let mut builder = Instance::builder(g, m).have_set(0, TokenSet::full(m));
            for v in 1..n {
                if rng.random_bool(0.7) {
                    builder = builder.want_set(v, TokenSet::full(m));
                }
            }
            let instance = builder.build().unwrap();
            if !instance.is_satisfiable() {
                continue;
            }
            let r = match solve_focd(&instance, &BnbOptions::default()) {
                Ok(r) => r,
                Err(SolveError::Unsatisfiable) => continue,
                Err(e) => panic!("trial {trial}: {e}"),
            };
            assert!(
                r.makespan >= makespan_lower_bound(&instance),
                "trial {trial}: optimum below admissible bound"
            );
            let replay = validate::replay(&instance, &r.schedule).unwrap();
            assert!(replay.is_successful(), "trial {trial}");
            // Optimality sanity: τ - 1 must be infeasible.
            if r.makespan > 0 {
                let shorter =
                    decide_focd(&instance, r.makespan - 1, &BnbOptions::default()).unwrap();
                assert!(shorter.is_none(), "trial {trial}: not actually optimal");
            }
        }
    }

    #[test]
    fn unsatisfiable_reported() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(g.node(1), g.node(0), 1).unwrap();
        let instance = Instance::builder(g, 1)
            .have(0, [tok(0)])
            .want(1, [tok(0)])
            .build()
            .unwrap();
        assert_eq!(
            solve_focd(&instance, &BnbOptions::default()).unwrap_err(),
            SolveError::Unsatisfiable
        );
    }

    #[test]
    fn horizon_exceeded_reported() {
        let instance = single_file(classic::path(5, 1, false), 1, 0);
        let options = BnbOptions {
            max_makespan: 2,
            ..Default::default()
        };
        assert_eq!(
            solve_focd(&instance, &options).unwrap_err(),
            SolveError::HorizonExceeded { horizon: 2 }
        );
    }

    #[test]
    fn decide_focd_boundary() {
        let instance = single_file(classic::path(3, 1, false), 1, 0);
        assert!(decide_focd(&instance, 1, &BnbOptions::default())
            .unwrap()
            .is_none());
        assert!(decide_focd(&instance, 2, &BnbOptions::default())
            .unwrap()
            .is_some());
        assert!(decide_focd(&instance, 5, &BnbOptions::default())
            .unwrap()
            .is_some());
    }

    #[test]
    fn trivial_instance_zero_steps() {
        let g = classic::path(2, 1, true);
        let instance = Instance::builder(g, 1).have(0, [tok(0)]).build().unwrap();
        let r = solve_focd(&instance, &BnbOptions::default()).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(r.schedule.bandwidth(), 0);
    }
}
