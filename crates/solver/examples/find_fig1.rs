//! Archival tool: the randomized search used while reconstructing the
//! paper's Figure 1 instance (whose graphic is absent from the available
//! text). It hunts for a small instance whose *exact* makespan/bandwidth
//! Pareto frontier matches the caption — minimum time 2 steps at 6
//! bandwidth, minimum bandwidth 4 at 3 steps. The search over
//! full-universe and random want-sets found none up to n = 6, which is
//! why `ocd_core::scenario::figure_one` was instead *derived* analytically
//! (two demand branches reachable quickly only through pure relays); the
//! exact solvers confirm it hits the caption numbers precisely.
//!
//! Run with: `cargo run --release -p ocd-solver --example find_fig1`

use ocd_core::{Instance, TokenSet};
use ocd_graph::DiGraph;
use ocd_lp::MipOptions;
use ocd_solver::ip::pareto_frontier;
use rand::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let opts = MipOptions::default();
    for trial in 0..200_000u64 {
        let n = rng.random_range(3..7usize);
        let m = rng.random_range(1..4usize);
        let mut g = DiGraph::with_nodes(n);
        let mut edges = 0;
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.random_bool(0.4) {
                    g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                        .unwrap();
                    edges += 1;
                }
            }
        }
        if edges == 0 || edges > 7 {
            continue;
        }
        let mut builder = Instance::builder(g.clone(), m).have_set(0, TokenSet::full(m));
        let mut any_want = false;
        for v in 1..n {
            let tokens: Vec<ocd_core::Token> = (0..m)
                .filter(|_| rng.random_bool(0.5))
                .map(ocd_core::Token::new)
                .collect();
            if !tokens.is_empty() {
                builder = builder.want_set(v, TokenSet::from_tokens(m, tokens));
                any_want = true;
            }
        }
        if !any_want {
            continue;
        }
        let instance = builder.build().unwrap();
        if !instance.is_satisfiable() {
            continue;
        }
        // Quick screens before paying for the IP.
        if instance.total_deficiency() > 6 {
            continue;
        }
        let Ok(frontier) = pareto_frontier(&instance, 1..=4, &opts) else {
            continue;
        };
        if frontier.first() == Some(&(2, 6))
            && frontier.iter().any(|&(t, b)| t == 3 && b == 4)
            && frontier.iter().all(|&(_, b)| b >= 4)
        {
            println!("FOUND at trial {trial}:");
            println!("{g:?}");
            for v in instance.graph().nodes() {
                println!(
                    "  v{}: have {:?} want {:?}",
                    v.index(),
                    instance.have(v),
                    instance.want(v)
                );
            }
            println!("frontier: {frontier:?}");
            return;
        }
        if trial % 5000 == 0 {
            eprintln!("trial {trial}…");
        }
    }
    println!("no instance found");
}
