//! Branch and bound for mixed-integer programs, warm-started and
//! batch-parallel.
//!
//! Nodes carry tightened variable bounds plus the parent's simplex
//! [`Basis`]; each node re-solves its LP relaxation with the sparse
//! revised simplex *warm-started from that basis* (a child differs from
//! its parent by a single bound flip, so the re-solve typically takes a
//! handful of pivots). Until the first incumbent exists nodes are
//! explored deepest-first (a dive: best-first keeps grazing the shallow
//! frontier of tight feasibility instances and can postpone the first
//! integral leaf almost indefinitely, while a plunge reaches one in
//! roughly `depth / BATCH_WIDTH` rounds); from the first incumbent on,
//! exploration is best-first by LP bound. Each node either prunes
//! (infeasible or dominated by the incumbent), accepts (integral), or
//! branches on the most fractional integer variable.
//!
//! # Deterministic parallelism
//!
//! Node evaluation is parallelized in **rounds**: each round pops up to
//! [`BATCH_WIDTH`] nodes in the strict `(bound, node id)` heap order,
//! solves their LPs concurrently under [`std::thread::scope`], then
//! applies the results *sequentially in that same order*. The round
//! width is a constant — deliberately **not** the thread count — so the
//! exploration schedule, the node ids, the incumbent updates, and every
//! reported number are a pure function of the problem. Threads only
//! change how fast a round's LPs are solved, never which nodes exist:
//! the [`MipSolution::incumbent_trace`] is byte-identical at
//! `threads = 1` and `threads = N` (CI pins this by byte-comparing
//! solver artifacts).

use crate::model::{LpError, Problem, Sense, VarId, VarKind};
use crate::sparse::{solve_standard, Basis, LpStats, StandardForm};
use ocd_core::span::{NoopSpans, SpanRecorder};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Nodes evaluated per parallel round. A constant (instead of the
/// thread count) so the search trajectory is identical for every
/// `threads` setting; see the module docs.
const BATCH_WIDTH: usize = 8;

/// Tuning knobs for [`Problem::solve_mip`].
#[derive(Debug, Clone)]
pub struct MipOptions {
    /// Abort with [`LpError::NodeLimit`] after this many branch-and-bound
    /// nodes.
    pub node_limit: usize,
    /// A solution within this of the best bound counts as optimal.
    pub absolute_gap: f64,
    /// Values within this of an integer count as integral.
    pub integrality_tol: f64,
    /// Worker threads for the per-round LP solves (clamped to ≥ 1).
    /// Any value produces bit-identical results; > 1 is only faster.
    pub threads: usize,
}

impl Default for MipOptions {
    fn default() -> Self {
        MipOptions {
            node_limit: 200_000,
            absolute_gap: 1e-6,
            integrality_tol: 1e-6,
            threads: 1,
        }
    }
}

/// An optimal (within tolerances) solution to a mixed-integer program.
#[derive(Debug, Clone)]
pub struct MipSolution {
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Value per variable; integer variables are exactly rounded.
    pub values: Vec<f64>,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Total simplex pivots across every node's LP solve.
    pub lp_iterations: u64,
    /// Every incumbent improvement as `(node id, objective)`, in the
    /// order found. Deterministic across thread counts — the raw
    /// material for CI's determinism byte-compare.
    pub incumbent_trace: Vec<(u64, f64)>,
}

impl MipSolution {
    /// Value of `var` in this solution.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of `var` rounded to the nearest integer (convenient for
    /// binary indicator variables).
    #[must_use]
    pub fn value_int(&self, var: VarId) -> i64 {
        self.values[var.index()].round() as i64
    }
}

struct Node {
    /// Creation order; unique. The heap tie-break, and what makes the
    /// exploration order a total order.
    id: u64,
    /// LP bound of the parent (optimistic estimate for this node),
    /// sign-normalized to minimization.
    bound: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Parent's optimal basis: the warm start for this node's re-solve.
    /// Shared between siblings, absent only at the root.
    basis: Option<Arc<Basis>>,
    depth: usize,
}

/// Max-heap ordered so the node with the *smallest* `(bound, id)` pops
/// first: best-first on the LP bound, strictly deterministic on ties.
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the maximum; reverse both keys. NaNs cannot
        // occur (bounds come from finite LP optima).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(other.id.cmp(&self.id))
    }
}

/// Heap wrapper for the pre-incumbent dive phase: the *deepest* node
/// pops first (ties: smaller bound, then smaller id). Deterministic for
/// the same reason the best-first order is — both keys are pure
/// functions of the search trajectory.
struct Dive(Node);

impl PartialEq for Dive {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}
impl Eq for Dive {}
impl PartialOrd for Dive {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Dive {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .depth
            .cmp(&other.0.depth)
            .then(
                other
                    .0
                    .bound
                    .partial_cmp(&self.0.bound)
                    .unwrap_or(Ordering::Equal),
            )
            .then(other.0.id.cmp(&self.0.id))
    }
}

type NodeLp = Result<(Vec<f64>, Basis, LpStats), LpError>;

/// Sign-normalized objective value as non-negative milli-units, the
/// fixed-point encoding span counters use for `f64` bounds (negative
/// bounds clamp to 0; OCD objectives are counts, hence non-negative).
fn bound_millis(x: f64) -> u64 {
    (x.max(0.0) * 1000.0).round() as u64
}

pub(crate) fn solve_mip(problem: &Problem, options: &MipOptions) -> Result<MipSolution, LpError> {
    solve_mip_with_spans(problem, options, &mut NoopSpans)
}

/// [`solve_mip`] with a [`SpanRecorder`] attached — the solver's search
/// telemetry. Each parallel round opens a `bnb.round` span (counter:
/// `width`); every node evaluated inside it closes a zero-width span
/// named for its fate — `bnb.node.branched`, `bnb.node.pruned`,
/// `bnb.node.incumbent`, or `bnb.node.infeasible` — carrying `id`,
/// `depth`, `lp_iterations`, and `bound_millis` counters. Incumbent
/// improvements additionally fire a `bnb.incumbent` event stream. Spans
/// are recorded in the deterministic sequential-apply order, so the
/// stream is byte-identical across thread counts and equal seeds.
pub(crate) fn solve_mip_with_spans<S: SpanRecorder>(
    problem: &Problem,
    options: &MipOptions,
    spans: &mut S,
) -> Result<MipSolution, LpError> {
    // Normalize to minimization internally: for maximization we compare
    // on `sign * objective`.
    let sign = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let integer_vars: Vec<usize> = problem
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| j)
        .collect();

    // One standard-form image shared (read-only) by every node solve on
    // every thread.
    let sf = StandardForm::new(problem);
    let threads = options.threads.max(1);

    let root_lower: Vec<f64> = problem.vars.iter().map(|v| v.lower).collect();
    let root_upper: Vec<f64> = problem.vars.iter().map(|v| v.upper).collect();

    // Two phase-specific heaps over the same live node set: `dive_heap`
    // (deepest-first) feeds the search until the first incumbent,
    // `bound_heap` (best-first) takes over for the optimality proof.
    let mut dive_heap: BinaryHeap<Dive> = BinaryHeap::new();
    let mut bound_heap: BinaryHeap<Node> = BinaryHeap::new();
    dive_heap.push(Dive(Node {
        id: 0,
        bound: f64::NEG_INFINITY,
        lower: root_lower,
        upper: root_upper,
        basis: None,
        depth: 0,
    }));
    let mut next_id = 1u64;

    let mut incumbent: Option<Vec<f64>> = None;
    let mut incumbent_cost = f64::INFINITY; // sign-normalized
    let mut incumbent_trace: Vec<(u64, f64)> = Vec::new();
    let mut nodes_explored = 0usize;
    let mut lp_iterations = 0u64;

    loop {
        // ---- Form the round: the BATCH_WIDTH best live nodes. --------
        if incumbent.is_some() && !dive_heap.is_empty() {
            // Phase switch: the dive found an incumbent; re-key the
            // survivors for best-first exploration.
            for Dive(node) in dive_heap.drain() {
                bound_heap.push(node);
            }
        }
        let diving = incumbent.is_none();
        let mut round: Vec<Node> = Vec::new();
        while round.len() < BATCH_WIDTH {
            if diving {
                match dive_heap.pop() {
                    Some(Dive(node)) => round.push(node),
                    None => break,
                }
                continue;
            }
            match bound_heap.peek() {
                Some(top) if top.bound <= incumbent_cost - options.absolute_gap => {
                    round.push(bound_heap.pop().expect("peeked"));
                }
                // The best remaining bound cannot improve the incumbent,
                // so nothing in the heap can: proven optimal.
                Some(_) => {
                    bound_heap.clear();
                    break;
                }
                None => break,
            }
        }
        if round.is_empty() {
            break;
        }
        let round_span = spans.open("bnb.round");
        spans.attach(round_span, "width", round.len() as u64);
        nodes_explored += round.len();
        if nodes_explored > options.node_limit {
            spans.close(round_span);
            return Err(LpError::NodeLimit);
        }

        // ---- Solve the round's LPs (possibly in parallel). -----------
        let mut results: Vec<Option<NodeLp>> = Vec::new();
        results.resize_with(round.len(), || None);
        let workers = threads.min(round.len());
        if workers <= 1 {
            for (node, slot) in round.iter().zip(results.iter_mut()) {
                *slot = Some(solve_standard(
                    &sf,
                    &node.lower,
                    &node.upper,
                    node.basis.as_deref(),
                ));
            }
        } else {
            let chunk = round.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (nodes, slots) in round.chunks(chunk).zip(results.chunks_mut(chunk)) {
                    let sf = &sf;
                    scope.spawn(move || {
                        for (node, slot) in nodes.iter().zip(slots.iter_mut()) {
                            *slot = Some(solve_standard(
                                sf,
                                &node.lower,
                                &node.upper,
                                node.basis.as_deref(),
                            ));
                        }
                    });
                }
            });
        }

        // ---- Apply results sequentially, in round (= heap) order. ----
        for (node, result) in round.into_iter().zip(results) {
            let result = result.expect("every slot filled");
            let (values, basis, stats) = match result {
                Ok(r) => r,
                Err(LpError::Infeasible) => {
                    let s = spans.open("bnb.node.infeasible");
                    spans.attach(s, "id", node.id);
                    spans.attach(s, "depth", node.depth as u64);
                    spans.close(s);
                    continue;
                }
                Err(e) => {
                    spans.close(round_span);
                    return Err(e);
                }
            };
            lp_iterations += stats.iterations;
            let objective: f64 = problem
                .vars
                .iter()
                .zip(&values)
                .map(|(v, x)| v.objective * x)
                .sum();
            let cost = sign * objective;
            let node_span = |spans: &mut S, name: &'static str| {
                let s = spans.open(name);
                spans.attach(s, "id", node.id);
                spans.attach(s, "depth", node.depth as u64);
                spans.attach(s, "lp_iterations", stats.iterations);
                spans.attach(s, "bound_millis", bound_millis(cost));
                spans.close(s);
            };
            if cost > incumbent_cost - options.absolute_gap {
                node_span(spans, "bnb.node.pruned");
                continue; // dominated
            }
            // Find the most fractional integer variable.
            let mut branch_var = None;
            let mut best_frac = options.integrality_tol;
            for &j in &integer_vars {
                let v = values[j];
                let frac = (v - v.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch_var = Some(j);
                }
            }
            match branch_var {
                None => {
                    // Integral: new incumbent.
                    incumbent_cost = cost;
                    incumbent_trace.push((node.id, objective));
                    incumbent = Some(values);
                    node_span(spans, "bnb.node.incumbent");
                    spans.event("bnb.incumbent", bound_millis(objective));
                }
                Some(j) => {
                    let floor = values[j].floor();
                    let warm = Arc::new(basis);
                    let mut down = Node {
                        id: next_id,
                        bound: cost,
                        lower: node.lower.clone(),
                        upper: node.upper.clone(),
                        basis: Some(Arc::clone(&warm)),
                        depth: node.depth + 1,
                    };
                    down.upper[j] = floor;
                    let mut up = Node {
                        id: next_id + 1,
                        bound: cost,
                        lower: node.lower,
                        upper: node.upper,
                        basis: Some(warm),
                        depth: node.depth + 1,
                    };
                    up.lower[j] = floor + 1.0;
                    next_id += 2;
                    if incumbent.is_none() {
                        dive_heap.push(Dive(down));
                        dive_heap.push(Dive(up));
                    } else {
                        bound_heap.push(down);
                        bound_heap.push(up);
                    }
                    node_span(spans, "bnb.node.branched");
                }
            }
        }
        spans.close(round_span);
    }

    match incumbent {
        Some(mut values) => {
            for &j in &integer_vars {
                values[j] = values[j].round();
            }
            // Recompute the objective from the rounded values.
            let objective = problem
                .vars
                .iter()
                .zip(&values)
                .map(|(v, x)| v.objective * x)
                .sum();
            Ok(MipSolution {
                objective,
                values,
                nodes_explored,
                lp_iterations,
                incumbent_trace,
            })
        }
        None => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    #[test]
    fn pure_lp_passes_through() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, 3.5, 1.0);
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert!((s.value(x) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c, 3a + 4b + 2c ≤ 6 → {a, c} = 17 vs {b, c} = 20.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a", 10.0);
        let b = p.add_binary("b", 13.0);
        let c = p.add_binary("c", 7.0);
        p.add_constraint([(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 20);
        assert_eq!(s.value_int(b), 1);
        assert_eq!(s.value_int(c), 1);
        assert_eq!(s.value_int(a), 0);
        assert!(s.lp_iterations > 0);
        assert!(!s.incumbent_trace.is_empty());
    }

    #[test]
    fn integrality_changes_the_answer() {
        // max x, 2x ≤ 5 → LP: 2.5, IP: 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        p.add_constraint([(x, 2.0)], Relation::Le, 5.0);
        assert!((p.solve_lp().unwrap().objective - 2.5).abs() < 1e-6);
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6 with x integer: LP feasible, IP infeasible.
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_var("x", VarKind::Integer, 0.4, 0.6, 1.0);
        assert!(p.solve_lp().is_ok());
        assert_eq!(
            p.solve_mip(&MipOptions::default()).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn set_cover_exact() {
        // Universe {1..4}; sets A={1,2}, B={2,3}, C={3,4}, D={1,4},
        // E={1,2,3} with unit costs. Optimal cover size 2 (E+C or A+C or D+B...).
        let mut p = Problem::new(Sense::Minimize);
        let sets = [
            vec![0usize, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![0, 1, 2],
        ];
        let vars: Vec<_> = (0..sets.len())
            .map(|i| p.add_binary(format!("s{i}"), 1.0))
            .collect();
        for elem in 0..4 {
            let covering: Vec<_> = sets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contains(&elem))
                .map(|(i, _)| (vars[i], 1.0))
                .collect();
            p.add_constraint(covering, Relation::Ge, 1.0);
        }
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn assignment_problem_is_naturally_integral() {
        // 3×3 assignment: costs such that the diagonal is optimal.
        let costs = [[1.0, 5.0, 9.0], [5.0, 2.0, 7.0], [9.0, 7.0, 3.0]];
        let mut p = Problem::new(Sense::Minimize);
        let mut x = Vec::new();
        for (i, row) in costs.iter().enumerate() {
            let mut r = Vec::new();
            for (j, &c) in row.iter().enumerate() {
                r.push(p.add_binary(format!("x{i}{j}"), c));
            }
            x.push(r);
        }
        for i in 0..3 {
            p.add_constraint((0..3).map(|j| (x[i][j], 1.0)), Relation::Eq, 1.0);
            p.add_constraint((0..3).map(|j| (x[j][i], 1.0)), Relation::Eq, 1.0);
        }
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 6);
        for i in 0..3 {
            assert_eq!(s.value_int(x[i][i]), 1);
        }
    }

    #[test]
    fn node_limit_respected() {
        // A small hard-ish instance with a tiny node budget.
        let mut p = Problem::new(Sense::Maximize);
        let weights = [91.0, 72.0, 90.0, 46.0, 55.0, 8.0, 35.0, 75.0, 61.0, 15.0];
        let vars: Vec<_> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| p.add_binary(format!("x{i}"), w + 0.5))
            .collect();
        p.add_constraint(
            vars.iter().copied().zip(weights.iter().copied()),
            Relation::Le,
            271.0,
        );
        let tight = MipOptions {
            node_limit: 1,
            ..Default::default()
        };
        assert_eq!(p.solve_mip(&tight).unwrap_err(), LpError::NodeLimit);
        assert!(p.solve_mip(&MipOptions::default()).is_ok());
    }

    #[test]
    fn general_integers_beyond_binary() {
        // max 7x + 2y, 3x + y ≤ 10, x,y ∈ ℤ, 0 ≤ x,y ≤ 10.
        // LP: x = 10/3 → IP: x=3,y=1 → 23; or x=2,y=4 → 22. Optimal 23.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 10.0, 7.0);
        let y = p.add_var("y", VarKind::Integer, 0.0, 10.0, 2.0);
        p.add_constraint([(x, 3.0), (y, 1.0)], Relation::Le, 10.0);
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 23);
        assert_eq!(s.value_int(x), 3);
        assert_eq!(s.value_int(y), 1);
    }

    #[test]
    fn parallel_solve_is_byte_identical() {
        // The full determinism contract: identical objective, values,
        // node count, LP pivot count, and incumbent trace at 1, 2, and
        // 4 threads.
        let mut p = Problem::new(Sense::Maximize);
        let weights = [91.0, 72.0, 90.0, 46.0, 55.0, 8.0, 35.0, 75.0, 61.0, 15.0];
        let values = [84.0, 83.0, 43.0, 4.0, 44.0, 6.0, 82.0, 92.0, 25.0, 83.0];
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| p.add_binary(format!("x{i}"), v))
            .collect();
        p.add_constraint(
            vars.iter().copied().zip(weights.iter().copied()),
            Relation::Le,
            269.0,
        );
        p.add_constraint(
            vars.iter().copied().zip(values.iter().copied()),
            Relation::Le,
            300.0,
        );
        let solve = |threads: usize| {
            p.solve_mip(&MipOptions {
                threads,
                ..Default::default()
            })
            .unwrap()
        };
        let base = solve(1);
        for threads in [2, 4] {
            let s = solve(threads);
            assert_eq!(format!("{:?}", s.values), format!("{:?}", base.values));
            assert_eq!(
                format!("{:?}", s.incumbent_trace),
                format!("{:?}", base.incumbent_trace),
                "incumbent trace diverged at {threads} threads"
            );
            assert_eq!(s.nodes_explored, base.nodes_explored);
            assert_eq!(s.lp_iterations, base.lp_iterations);
            assert!((s.objective - base.objective).abs() == 0.0);
        }
    }

    #[test]
    fn span_stream_mirrors_search_and_is_thread_invariant() {
        // Same instance as `parallel_solve_is_byte_identical`: enough
        // nodes for a non-trivial search tree.
        let mut p = Problem::new(Sense::Maximize);
        let weights = [91.0, 72.0, 90.0, 46.0, 55.0, 8.0, 35.0, 75.0, 61.0, 15.0];
        let values = [84.0, 83.0, 43.0, 4.0, 44.0, 6.0, 82.0, 92.0, 25.0, 83.0];
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| p.add_binary(format!("x{i}"), v))
            .collect();
        p.add_constraint(
            vars.iter().copied().zip(weights.iter().copied()),
            Relation::Le,
            269.0,
        );
        p.add_constraint(
            vars.iter().copied().zip(values.iter().copied()),
            Relation::Le,
            300.0,
        );
        let profile = |threads: usize| {
            let mut spans = ocd_core::FlightRecorder::logical();
            let s = p
                .solve_mip_with_spans(
                    &MipOptions {
                        threads,
                        ..Default::default()
                    },
                    &mut spans,
                )
                .unwrap();
            (s, spans)
        };
        let (s, spans) = profile(1);
        assert!(spans.is_balanced());
        // Exactly one `bnb.node.*` span per explored node.
        assert_eq!(spans.count("bnb.node."), s.nodes_explored);
        assert!(spans.count("bnb.round") > 0);
        // One incumbent event per incumbent-trace entry.
        let incumbents = spans
            .events()
            .iter()
            .filter(|e| e.name == "bnb.incumbent")
            .count();
        assert!(incumbents > 0);
        assert_eq!(incumbents, s.incumbent_trace.len());
        // The per-node `lp_iterations` counters sum to the solve total
        // (infeasible nodes have no LP stats and carry none).
        let iters: u64 = spans
            .spans()
            .iter()
            .filter(|sp| sp.name.starts_with("bnb.node.") && sp.name != "bnb.node.infeasible")
            .flat_map(|sp| sp.counters.iter())
            .filter(|(k, _)| *k == "lp_iterations")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(iters, s.lp_iterations);
        // Node spans nest inside their round span.
        for sp in spans.spans() {
            match sp.name {
                "bnb.round" => assert_eq!(sp.depth, 0),
                _ => assert_eq!(sp.depth, 1, "{} should nest under bnb.round", sp.name),
            }
        }
        // The search timeline is byte-identical across thread counts —
        // the span-level restatement of the determinism contract.
        let (_, spans4) = profile(4);
        assert_eq!(spans.to_chrome_json("bnb"), spans4.to_chrome_json("bnb"));
    }

    #[test]
    fn random_binary_ips_match_bruteforce() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..40 {
            let nv = rng.random_range(2..7usize);
            let nc = rng.random_range(1..4usize);
            let mut p = Problem::new(Sense::Maximize);
            let obj: Vec<f64> = (0..nv).map(|_| rng.random_range(-5.0..9.0)).collect();
            let vars: Vec<_> = obj
                .iter()
                .enumerate()
                .map(|(i, &c)| p.add_binary(format!("x{i}"), c))
                .collect();
            let mut cons = Vec::new();
            for _ in 0..nc {
                let coeffs: Vec<f64> = (0..nv)
                    .map(|_| rng.random_range(-3.0_f64..4.0).round())
                    .collect();
                let rhs = rng.random_range(0.0_f64..6.0).round();
                p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Le,
                    rhs,
                );
                cons.push((coeffs, rhs));
            }
            // Brute force over all 2^nv assignments.
            let mut best: Option<f64> = None;
            for mask in 0u32..(1 << nv) {
                let point: Vec<f64> = (0..nv)
                    .map(|j| if mask & (1 << j) != 0 { 1.0 } else { 0.0 })
                    .collect();
                let ok = cons.iter().all(|(coeffs, rhs)| {
                    coeffs.iter().zip(&point).map(|(c, v)| c * v).sum::<f64>() <= rhs + 1e-9
                });
                if ok {
                    let val: f64 = obj.iter().zip(&point).map(|(c, v)| c * v).sum();
                    best = Some(best.map_or(val, |b: f64| b.max(val)));
                }
            }
            let got = p.solve_mip(&MipOptions::default());
            match best {
                Some(b) => {
                    let s = got.unwrap_or_else(|e| panic!("trial {trial}: {e}"));
                    assert!(
                        (s.objective - b).abs() < 1e-5,
                        "trial {trial}: got {}, brute force {b}",
                        s.objective
                    );
                }
                None => assert_eq!(got.unwrap_err(), LpError::Infeasible, "trial {trial}"),
            }
        }
    }
}
