//! Branch and bound for mixed-integer programs.
//!
//! Nodes carry tightened variable bounds; each node solves its LP
//! relaxation with the dense simplex and either prunes (infeasible or
//! dominated by the incumbent), accepts (integral), or branches on the
//! most fractional integer variable. Nodes are explored best-first by LP
//! bound so the incumbent converges quickly and pruning is maximal.

use crate::model::{LpError, LpSolution, Problem, Sense, VarId, VarKind};
use crate::simplex::solve_lp_with_bounds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tuning knobs for [`Problem::solve_mip`].
#[derive(Debug, Clone)]
pub struct MipOptions {
    /// Abort with [`LpError::NodeLimit`] after this many branch-and-bound
    /// nodes.
    pub node_limit: usize,
    /// A solution within this of the best bound counts as optimal.
    pub absolute_gap: f64,
    /// Values within this of an integer count as integral.
    pub integrality_tol: f64,
}

impl Default for MipOptions {
    fn default() -> Self {
        MipOptions {
            node_limit: 200_000,
            absolute_gap: 1e-6,
            integrality_tol: 1e-6,
        }
    }
}

/// An optimal (within tolerances) solution to a mixed-integer program.
#[derive(Debug, Clone)]
pub struct MipSolution {
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Value per variable; integer variables are exactly rounded.
    pub values: Vec<f64>,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

impl MipSolution {
    /// Value of `var` in this solution.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of `var` rounded to the nearest integer (convenient for
    /// binary indicator variables).
    #[must_use]
    pub fn value_int(&self, var: VarId) -> i64 {
        self.values[var.index()].round() as i64
    }
}

struct Node {
    /// LP bound of the parent (optimistic estimate for this node).
    bound: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
    depth: usize,
}

/// Max-heap ordered so the node with the *best* bound pops first
/// (smallest bound for minimization — the caller normalizes to
/// minimization before pushing). Ties break deepest-first so the search
/// dives toward incumbents.
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.depth == other.depth
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the maximum; we want the minimum bound, so
        // reverse. NaNs cannot occur (bounds come from finite LP optima).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

pub(crate) fn solve_mip(problem: &Problem, options: &MipOptions) -> Result<MipSolution, LpError> {
    // Normalize to minimization internally: for maximization we compare
    // on `sign * objective`.
    let sign = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let integer_vars: Vec<usize> = problem
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| j)
        .collect();

    let root_lower: Vec<f64> = problem.vars.iter().map(|v| v.lower).collect();
    let root_upper: Vec<f64> = problem.vars.iter().map(|v| v.upper).collect();

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: f64::NEG_INFINITY,
        lower: root_lower,
        upper: root_upper,
        depth: 0,
    });

    let mut incumbent: Option<LpSolution> = None;
    let mut incumbent_cost = f64::INFINITY; // sign-normalized
    let mut nodes_explored = 0usize;

    while let Some(node) = heap.pop() {
        if node.bound > incumbent_cost - options.absolute_gap {
            // Best remaining node cannot improve: proven optimal.
            break;
        }
        nodes_explored += 1;
        if nodes_explored > options.node_limit {
            return Err(LpError::NodeLimit);
        }
        let relaxed = match solve_lp_with_bounds(problem, &node.lower, &node.upper) {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(LpError::Unbounded) if node.depth == 0 && !integer_vars.is_empty() => {
                // An unbounded relaxation of an integer problem is still
                // unbounded or infeasible; report unbounded like the LP.
                return Err(LpError::Unbounded);
            }
            Err(e) => return Err(e),
        };
        let cost = sign * relaxed.objective;
        if cost > incumbent_cost - options.absolute_gap {
            continue; // dominated
        }
        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = options.integrality_tol;
        for &j in &integer_vars {
            let v = relaxed.values[j];
            let frac = (v - v.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(j);
            }
        }
        match branch_var {
            None => {
                // Integral: new incumbent.
                incumbent_cost = cost;
                incumbent = Some(relaxed);
            }
            Some(j) => {
                let v = relaxed.values[j];
                let floor = v.floor();
                let mut down = Node {
                    bound: cost,
                    lower: node.lower.clone(),
                    upper: node.upper.clone(),
                    depth: node.depth + 1,
                };
                down.upper[j] = floor;
                let mut up = Node {
                    bound: cost,
                    lower: node.lower,
                    upper: node.upper,
                    depth: node.depth + 1,
                };
                up.lower[j] = floor + 1.0;
                heap.push(down);
                heap.push(up);
            }
        }
    }

    match incumbent {
        Some(sol) => {
            let mut values = sol.values;
            for &j in &integer_vars {
                values[j] = values[j].round();
            }
            // Recompute the objective from the rounded values.
            let objective = problem
                .vars
                .iter()
                .zip(&values)
                .map(|(v, x)| v.objective * x)
                .sum();
            Ok(MipSolution {
                objective,
                values,
                nodes_explored,
            })
        }
        None => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    #[test]
    fn pure_lp_passes_through() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, 3.5, 1.0);
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert!((s.value(x) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c, 3a + 4b + 2c ≤ 6 → {a, c} = 17 vs {b, c} = 20.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a", 10.0);
        let b = p.add_binary("b", 13.0);
        let c = p.add_binary("c", 7.0);
        p.add_constraint([(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 20);
        assert_eq!(s.value_int(b), 1);
        assert_eq!(s.value_int(c), 1);
        assert_eq!(s.value_int(a), 0);
    }

    #[test]
    fn integrality_changes_the_answer() {
        // max x, 2x ≤ 5 → LP: 2.5, IP: 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        p.add_constraint([(x, 2.0)], Relation::Le, 5.0);
        assert!((p.solve_lp().unwrap().objective - 2.5).abs() < 1e-6);
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6 with x integer: LP feasible, IP infeasible.
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_var("x", VarKind::Integer, 0.4, 0.6, 1.0);
        assert!(p.solve_lp().is_ok());
        assert_eq!(
            p.solve_mip(&MipOptions::default()).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn set_cover_exact() {
        // Universe {1..4}; sets A={1,2}, B={2,3}, C={3,4}, D={1,4},
        // E={1,2,3} with unit costs. Optimal cover size 2 (E+C or A+C or D+B...).
        let mut p = Problem::new(Sense::Minimize);
        let sets = [
            vec![0usize, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![0, 1, 2],
        ];
        let vars: Vec<_> = (0..sets.len())
            .map(|i| p.add_binary(format!("s{i}"), 1.0))
            .collect();
        for elem in 0..4 {
            let covering: Vec<_> = sets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contains(&elem))
                .map(|(i, _)| (vars[i], 1.0))
                .collect();
            p.add_constraint(covering, Relation::Ge, 1.0);
        }
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn assignment_problem_is_naturally_integral() {
        // 3×3 assignment: costs such that the diagonal is optimal.
        let costs = [[1.0, 5.0, 9.0], [5.0, 2.0, 7.0], [9.0, 7.0, 3.0]];
        let mut p = Problem::new(Sense::Minimize);
        let mut x = Vec::new();
        for (i, row) in costs.iter().enumerate() {
            let mut r = Vec::new();
            for (j, &c) in row.iter().enumerate() {
                r.push(p.add_binary(format!("x{i}{j}"), c));
            }
            x.push(r);
        }
        for i in 0..3 {
            p.add_constraint((0..3).map(|j| (x[i][j], 1.0)), Relation::Eq, 1.0);
            p.add_constraint((0..3).map(|j| (x[j][i], 1.0)), Relation::Eq, 1.0);
        }
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 6);
        for i in 0..3 {
            assert_eq!(s.value_int(x[i][i]), 1);
        }
    }

    #[test]
    fn node_limit_respected() {
        // A small hard-ish instance with a tiny node budget.
        let mut p = Problem::new(Sense::Maximize);
        let weights = [91.0, 72.0, 90.0, 46.0, 55.0, 8.0, 35.0, 75.0, 61.0, 15.0];
        let vars: Vec<_> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| p.add_binary(format!("x{i}"), w + 0.5))
            .collect();
        p.add_constraint(
            vars.iter().copied().zip(weights.iter().copied()),
            Relation::Le,
            271.0,
        );
        let tight = MipOptions {
            node_limit: 1,
            ..Default::default()
        };
        assert_eq!(p.solve_mip(&tight).unwrap_err(), LpError::NodeLimit);
        assert!(p.solve_mip(&MipOptions::default()).is_ok());
    }

    #[test]
    fn general_integers_beyond_binary() {
        // max 7x + 2y, 3x + y ≤ 10, x,y ∈ ℤ, 0 ≤ x,y ≤ 10.
        // LP: x = 10/3 → IP: x=3,y=1 → 23; or x=2,y=4 → 22. Optimal 23.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarKind::Integer, 0.0, 10.0, 7.0);
        let y = p.add_var("y", VarKind::Integer, 0.0, 10.0, 2.0);
        p.add_constraint([(x, 3.0), (y, 1.0)], Relation::Le, 10.0);
        let s = p.solve_mip(&MipOptions::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 23);
        assert_eq!(s.value_int(x), 3);
        assert_eq!(s.value_int(y), 1);
    }

    #[test]
    fn random_binary_ips_match_bruteforce() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..40 {
            let nv = rng.random_range(2..7usize);
            let nc = rng.random_range(1..4usize);
            let mut p = Problem::new(Sense::Maximize);
            let obj: Vec<f64> = (0..nv).map(|_| rng.random_range(-5.0..9.0)).collect();
            let vars: Vec<_> = obj
                .iter()
                .enumerate()
                .map(|(i, &c)| p.add_binary(format!("x{i}"), c))
                .collect();
            let mut cons = Vec::new();
            for _ in 0..nc {
                let coeffs: Vec<f64> = (0..nv)
                    .map(|_| rng.random_range(-3.0_f64..4.0).round())
                    .collect();
                let rhs = rng.random_range(0.0_f64..6.0).round();
                p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Le,
                    rhs,
                );
                cons.push((coeffs, rhs));
            }
            // Brute force over all 2^nv assignments.
            let mut best: Option<f64> = None;
            for mask in 0u32..(1 << nv) {
                let point: Vec<f64> = (0..nv)
                    .map(|j| if mask & (1 << j) != 0 { 1.0 } else { 0.0 })
                    .collect();
                let ok = cons.iter().all(|(coeffs, rhs)| {
                    coeffs.iter().zip(&point).map(|(c, v)| c * v).sum::<f64>() <= rhs + 1e-9
                });
                if ok {
                    let val: f64 = obj.iter().zip(&point).map(|(c, v)| c * v).sum();
                    best = Some(best.map_or(val, |b: f64| b.max(val)));
                }
            }
            let got = p.solve_mip(&MipOptions::default());
            match best {
                Some(b) => {
                    let s = got.unwrap_or_else(|e| panic!("trial {trial}: {e}"));
                    assert!(
                        (s.objective - b).abs() < 1e-5,
                        "trial {trial}: got {}, brute force {b}",
                        s.objective
                    );
                }
                None => assert_eq!(got.unwrap_err(), LpError::Infeasible, "trial {trial}"),
            }
        }
    }
}
