//! Sparse revised simplex with bounded variables.
//!
//! This is the production LP engine behind [`Problem::solve_lp`] and
//! branch and bound; the dense tableau in [`crate::simplex`] is retained
//! as a cross-checking reference. Design, following the standard revised
//! method:
//!
//! - **Standard form.** Every constraint row gets one slack with bounds
//!   `[0, ∞)` (`≥` rows are negated into `≤` first) or `[0, 0]` for
//!   equalities, so the working system is always `Ax + s = b` over
//!   *bounded* variables. Upper bounds stay implicit in the variable
//!   statuses — they never become rows, which is what keeps the basis at
//!   `m × m` instead of the dense solver's `(m + n) × (m + n)`.
//! - **CSC storage.** Structural columns live in one compressed-sparse
//!   column triplet (`col_ptr` / `row_ix` / `val`); slack columns are
//!   implicit unit vectors.
//! - **Product-form basis.** `B⁻¹` is an *eta file*: a product of rank-1
//!   elementary matrices appended per pivot (FTRAN applies them forward,
//!   BTRAN transposed in reverse). The file is rebuilt from the basic
//!   columns — smallest-nnz first, partial pivoting on the largest
//!   remaining magnitude — every [`REFACTOR_ETAS`] pivots, which bounds
//!   both fill-in and round-off drift.
//! - **Composite phase 1.** Feasibility is restored by minimizing the
//!   total bound violation of the *basic* variables (cost −1 below the
//!   lower bound, +1 above the upper). This works from **any** starting
//!   basis, which is exactly what a warm start needs: a child node flips
//!   one bound, re-adopts the parent [`Basis`], and phase 1 repairs the
//!   (usually tiny) infeasibility in a handful of pivots.
//! - **Pricing.** Dantzig's rule over cyclic partial-pricing blocks,
//!   falling back to Bland's rule after a run of degenerate pivots.
//!   Entering steps use the bounded-variable ratio test, so a variable
//!   may simply *flip* from one bound to the other without a basis
//!   change.
//!
//! Everything is deterministic: pricing scans, tie-breaks (largest
//! pivot, then lowest index), and the refactorization column order are
//! pure functions of the problem data and the starting basis.

use crate::model::{LpError, Problem, Relation, Sense, VarId};

/// Bound-violation tolerance (primal feasibility).
const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost tolerance (dual feasibility / optimality).
const DUAL_TOL: f64 = 1e-7;
/// Minimum magnitude for a pivot element in the ratio test.
const PIVOT_TOL: f64 = 1e-8;
/// Minimum magnitude for a pivot during refactorization.
const REFACTOR_PIVOT_TOL: f64 = 1e-10;
/// Entries below this are dropped from eta columns.
const ZERO_TOL: f64 = 1e-13;
/// A variable whose bound range is below this is fixed (never enters).
const FIXED_TOL: f64 = 1e-12;
/// A ratio-test step below this counts as a degenerate pivot.
const DEGEN_TOL: f64 = 1e-9;
/// Ratio-test ties within this tolerance are broken by pivot magnitude.
const RATIO_TIE_TOL: f64 = 1e-9;
/// Rebuild the eta file after this many accumulated pivots.
const REFACTOR_ETAS: usize = 100;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_LIMIT: u32 = 60;

/// Where a column currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    /// In the basis; its value lives in the row's `xb` slot.
    Basic,
    /// Nonbasic at its (always finite) lower bound.
    AtLower,
    /// Nonbasic at its finite upper bound.
    AtUpper,
}

/// Snapshot of a simplex basis: the status of every column plus the
/// basic column of every row.
///
/// A successful [`Problem::solve_lp_with_basis`] returns one; passing it
/// back as the warm start for a re-solve of the *same problem under
/// different bounds* (the branch-and-bound child pattern: one bound
/// flip) lets the simplex resume from the parent's vertex instead of
/// from scratch. A basis that does not fit the problem is silently
/// ignored in favor of a cold start, so stale snapshots are safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    status: Vec<ColStatus>,
    basic: Vec<u32>,
}

/// Work counters from one simplex solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Simplex pivots (bound flips included) across both phases.
    pub iterations: u64,
    /// Eta-file rebuilds (the initial factorization included).
    pub refactorizations: u64,
}

/// One elementary (eta) matrix of the product-form inverse: identity
/// except for column `row`, which holds `pivot` on the diagonal and
/// `entries` off it.
#[derive(Debug)]
struct Eta {
    row: u32,
    pivot: f64,
    entries: Vec<(u32, f64)>,
}

/// The immutable standard-form image of a [`Problem`]: built once and
/// shared (it is `Sync`) across every LP solve of a branch-and-bound
/// run.
#[derive(Debug)]
pub(crate) struct StandardForm {
    /// Constraint rows.
    pub(crate) m: usize,
    /// Structural variables (slacks are indexed `n..n + m`).
    pub(crate) n: usize,
    col_ptr: Vec<usize>,
    row_ix: Vec<u32>,
    val: Vec<f64>,
    b: Vec<f64>,
    /// Rows whose slack is fixed at zero (`=` constraints).
    eq_row: Vec<bool>,
    /// Structural objective, sign-normalized to minimization.
    cost: Vec<f64>,
    max_iters: u64,
}

impl StandardForm {
    pub(crate) fn new(problem: &Problem) -> Self {
        let m = problem.constraints.len();
        let n = problem.vars.len();
        let sign = match problem.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut row_sign = vec![1.0f64; m];
        let mut eq_row = vec![false; m];
        let mut b = vec![0.0; m];
        for (i, c) in problem.constraints.iter().enumerate() {
            match c.relation {
                Relation::Le => {}
                Relation::Ge => row_sign[i] = -1.0,
                Relation::Eq => eq_row[i] = true,
            }
            b[i] = row_sign[i] * c.rhs;
        }
        let nnz: usize = problem.vars.iter().map(|v| v.entries.len()).sum();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_ix = Vec::with_capacity(nnz);
        let mut val = Vec::with_capacity(nnz);
        let mut cost = Vec::with_capacity(n);
        col_ptr.push(0);
        for v in &problem.vars {
            for &(i, a) in &v.entries {
                if a != 0.0 {
                    row_ix.push(i as u32);
                    val.push(row_sign[i] * a);
                }
            }
            col_ptr.push(row_ix.len());
            cost.push(sign * v.objective);
        }
        let max_iters = (20_000 + 50 * (m + n + m)) as u64;
        StandardForm {
            m,
            n,
            col_ptr,
            row_ix,
            val,
            b,
            eq_row,
            cost,
            max_iters,
        }
    }

    fn total(&self) -> usize {
        self.n + self.m
    }

    fn col_nnz(&self, j: usize) -> usize {
        if j < self.n {
            self.col_ptr[j + 1] - self.col_ptr[j]
        } else {
            1
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

/// Internal solve failure: `Singular` asks the caller to retry cold.
enum Abort {
    Lp(LpError),
    Singular,
}

/// Solves the standard form under the given structural bounds,
/// optionally warm-starting from `warm`. Returns the structural values,
/// the optimal basis, and work counters.
pub(crate) fn solve_standard(
    sf: &StandardForm,
    lower: &[f64],
    upper: &[f64],
    warm: Option<&Basis>,
) -> Result<(Vec<f64>, Basis, LpStats), LpError> {
    assert_eq!(lower.len(), sf.n, "lower bound count mismatch");
    assert_eq!(upper.len(), sf.n, "upper bound count mismatch");
    for (j, (&l, &u)) in lower.iter().zip(upper).enumerate() {
        if !l.is_finite() {
            return Err(LpError::UnsupportedBound { var: VarId(j) });
        }
        if l > u + FEAS_TOL {
            // Routine while branching: a flipped bound emptied the box.
            return Err(LpError::Infeasible);
        }
    }
    match Worker::run(sf, lower, upper, warm) {
        Ok(r) => Ok(r),
        Err(Abort::Lp(e)) => Err(e),
        Err(Abort::Singular) => {
            // A numerically singular warm basis: restart cold (the
            // all-slack basis always factorizes).
            match Worker::run(sf, lower, upper, None) {
                Ok(r) => Ok(r),
                Err(Abort::Lp(e)) => Err(e),
                Err(Abort::Singular) => Err(LpError::IterationLimit),
            }
        }
    }
}

struct Worker<'a> {
    sf: &'a StandardForm,
    /// Bounds over all `total` columns (structurals then slacks).
    lo: Vec<f64>,
    up: Vec<f64>,
    status: Vec<ColStatus>,
    /// Basic column of each row.
    basic: Vec<u32>,
    /// Row of each basic column (`u32::MAX` when nonbasic).
    row_of: Vec<u32>,
    etas: Vec<Eta>,
    /// Length of the eta file right after the last refactorization:
    /// only etas *beyond* this mark are update etas that count toward
    /// the next rebuild (a fresh factorization itself holds up to `m`).
    refactor_mark: usize,
    /// Value of the basic variable of each row.
    xb: Vec<f64>,
    pricing_cursor: usize,
    degenerate_run: u32,
    bland: bool,
    stats: LpStats,
}

impl<'a> Worker<'a> {
    fn run(
        sf: &'a StandardForm,
        lower: &[f64],
        upper: &[f64],
        warm: Option<&Basis>,
    ) -> Result<(Vec<f64>, Basis, LpStats), Abort> {
        let (m, total) = (sf.m, sf.total());
        let mut lo = Vec::with_capacity(total);
        let mut up = Vec::with_capacity(total);
        lo.extend_from_slice(lower);
        up.extend_from_slice(upper);
        for i in 0..m {
            lo.push(0.0);
            up.push(if sf.eq_row[i] { 0.0 } else { f64::INFINITY });
        }
        let mut worker = Worker {
            sf,
            lo,
            up,
            status: Vec::new(),
            basic: Vec::new(),
            row_of: Vec::new(),
            etas: Vec::new(),
            refactor_mark: 0,
            xb: vec![0.0; m],
            pricing_cursor: 0,
            degenerate_run: 0,
            bland: false,
            stats: LpStats::default(),
        };
        let adopted = warm.is_some_and(|b| worker.adopt(b));
        if !adopted {
            worker.cold_basis();
        }
        if worker.refactorize().is_err() {
            // A singular warm basis: fall back to the all-slack basis,
            // whose factorization is the identity and cannot fail.
            if !adopted {
                return Err(Abort::Singular);
            }
            worker.cold_basis();
            if worker.refactorize().is_err() {
                return Err(Abort::Singular);
            }
        }
        worker.compute_xb();
        worker.run_phase(Phase::One)?;
        if worker.infeasibility() > FEAS_TOL {
            return Err(Abort::Lp(LpError::Infeasible));
        }
        worker.run_phase(Phase::Two)?;
        let values = worker.extract();
        let basis = Basis {
            status: worker.status,
            basic: worker.basic,
        };
        Ok((values, basis, worker.stats))
    }

    /// Resets to the all-slack basis with structurals at their lower
    /// bounds.
    fn cold_basis(&mut self) {
        let (m, n, total) = (self.sf.m, self.sf.n, self.sf.total());
        self.status = vec![ColStatus::AtLower; total];
        for j in n..total {
            self.status[j] = ColStatus::Basic;
        }
        self.basic = (0..m).map(|i| (n + i) as u32).collect();
        self.rebuild_row_of();
    }

    /// Adopts a warm-start basis if it is structurally consistent with
    /// this problem; returns whether it was taken.
    fn adopt(&mut self, b: &Basis) -> bool {
        let (m, total) = (self.sf.m, self.sf.total());
        if b.status.len() != total || b.basic.len() != m {
            return false;
        }
        if b.status.iter().filter(|s| **s == ColStatus::Basic).count() != m {
            return false;
        }
        let mut seen = vec![false; total];
        for &c in &b.basic {
            let c = c as usize;
            if c >= total || seen[c] || b.status[c] != ColStatus::Basic {
                return false;
            }
            seen[c] = true;
        }
        self.status = b.status.clone();
        self.basic = b.basic.clone();
        // Normalize nonbasic statuses against the *current* bounds: a
        // bound that was finite at the parent may be infinite here.
        for j in 0..total {
            if self.status[j] == ColStatus::AtUpper && !self.up[j].is_finite() {
                self.status[j] = ColStatus::AtLower;
            }
        }
        self.rebuild_row_of();
        true
    }

    fn rebuild_row_of(&mut self) {
        self.row_of = vec![u32::MAX; self.sf.total()];
        for (r, &c) in self.basic.iter().enumerate() {
            self.row_of[c as usize] = r as u32;
        }
    }

    /// Phase-2 cost of a column (slacks cost nothing).
    fn cost(&self, j: usize) -> f64 {
        if j < self.sf.n {
            self.sf.cost[j]
        } else {
            0.0
        }
    }

    /// Adds `scale · a_j` into the dense vector `v`.
    fn scatter_col(&self, j: usize, scale: f64, v: &mut [f64]) {
        if j < self.sf.n {
            for k in self.sf.col_ptr[j]..self.sf.col_ptr[j + 1] {
                v[self.sf.row_ix[k] as usize] += scale * self.sf.val[k];
            }
        } else {
            v[j - self.sf.n] += scale;
        }
    }

    /// `a_j · y`.
    fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.sf.n {
            let mut acc = 0.0;
            for k in self.sf.col_ptr[j]..self.sf.col_ptr[j + 1] {
                acc += self.sf.val[k] * y[self.sf.row_ix[k] as usize];
            }
            acc
        } else {
            y[j - self.sf.n]
        }
    }

    /// `v ← B⁻¹ v`: applies the eta file forward.
    fn ftran(&self, v: &mut [f64]) {
        for e in &self.etas {
            let t = v[e.row as usize];
            if t.abs() <= ZERO_TOL {
                continue;
            }
            v[e.row as usize] = e.pivot * t;
            for &(i, c) in &e.entries {
                v[i as usize] += c * t;
            }
        }
    }

    /// `z ← (B⁻¹)ᵀ z`: applies the transposed eta file in reverse.
    fn btran(&self, z: &mut [f64]) {
        for e in self.etas.iter().rev() {
            let mut acc = e.pivot * z[e.row as usize];
            for &(i, c) in &e.entries {
                acc += c * z[i as usize];
            }
            z[e.row as usize] = acc;
        }
    }

    /// Appends the eta matrix that pivots the (already FTRANed) column
    /// `w` on row `r`. Identity etas are skipped.
    fn push_eta(&mut self, w: &[f64], r: usize) {
        let pivot = 1.0 / w[r];
        let mut entries = Vec::new();
        for (i, &wi) in w.iter().enumerate() {
            if i != r && wi.abs() > ZERO_TOL {
                entries.push((i as u32, -wi * pivot));
            }
        }
        if entries.is_empty() && (pivot - 1.0).abs() <= ZERO_TOL {
            return;
        }
        self.etas.push(Eta {
            row: r as u32,
            pivot,
            entries,
        });
    }

    /// Rebuilds the eta file from the current basic columns: columns are
    /// processed smallest-nnz first (lowest index on ties) and each
    /// pivots on its largest remaining row — deterministic partial
    /// pivoting. Fails if the basis is numerically singular.
    fn refactorize(&mut self) -> Result<(), ()> {
        let m = self.sf.m;
        self.etas.clear();
        let cols = self.basic.clone();
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&i| (self.sf.col_nnz(cols[i] as usize), cols[i]));
        let mut pivoted = vec![false; m];
        let mut new_basic = vec![0u32; m];
        let mut w = vec![0.0; m];
        for &slot in &order {
            let col = cols[slot] as usize;
            for x in w.iter_mut() {
                *x = 0.0;
            }
            self.scatter_col(col, 1.0, &mut w);
            self.ftran(&mut w);
            let mut r = usize::MAX;
            let mut best = REFACTOR_PIVOT_TOL;
            for (i, &p) in pivoted.iter().enumerate() {
                if !p && w[i].abs() > best {
                    best = w[i].abs();
                    r = i;
                }
            }
            if r == usize::MAX {
                return Err(());
            }
            self.push_eta(&w, r);
            pivoted[r] = true;
            new_basic[r] = col as u32;
        }
        self.basic = new_basic;
        self.rebuild_row_of();
        self.refactor_mark = self.etas.len();
        self.stats.refactorizations += 1;
        Ok(())
    }

    /// Recomputes `xb = B⁻¹ (b − A_N x_N)` from scratch.
    fn compute_xb(&mut self) {
        let mut v = self.sf.b.clone();
        for j in 0..self.sf.total() {
            let xj = match self.status[j] {
                ColStatus::Basic => continue,
                ColStatus::AtLower => self.lo[j],
                ColStatus::AtUpper => self.up[j],
            };
            if xj != 0.0 {
                self.scatter_col(j, -xj, &mut v);
            }
        }
        self.ftran(&mut v);
        self.xb = v;
    }

    /// Total bound violation of the basic variables.
    fn infeasibility(&self) -> f64 {
        let mut f = 0.0;
        for (r, &c) in self.basic.iter().enumerate() {
            let c = c as usize;
            f += (self.lo[c] - self.xb[r]).max(0.0) + (self.xb[r] - self.up[c]).max(0.0);
        }
        f
    }

    /// Runs one simplex phase to its termination condition.
    fn run_phase(&mut self, phase: Phase) -> Result<(), Abort> {
        let m = self.sf.m;
        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        self.degenerate_run = 0;
        self.bland = false;
        loop {
            if self.stats.iterations >= self.sf.max_iters {
                return Err(Abort::Lp(LpError::IterationLimit));
            }
            if self.etas.len() - self.refactor_mark >= REFACTOR_ETAS {
                self.refactorize().map_err(|()| Abort::Singular)?;
                self.compute_xb();
            }
            // Dual prices y = ĉ_B B⁻¹ for the phase's basic costs.
            let mut infeasible_rows = false;
            for (r, &c) in self.basic.iter().enumerate() {
                let c = c as usize;
                y[r] = match phase {
                    Phase::One => {
                        if self.xb[r] < self.lo[c] - FEAS_TOL {
                            infeasible_rows = true;
                            -1.0
                        } else if self.xb[r] > self.up[c] + FEAS_TOL {
                            infeasible_rows = true;
                            1.0
                        } else {
                            0.0
                        }
                    }
                    Phase::Two => self.cost(c),
                };
            }
            if phase == Phase::One && !infeasible_rows {
                return Ok(()); // feasible: phase 1 done
            }
            self.btran(&mut y);
            let Some(q) = self.price(phase, &y) else {
                return Ok(()); // no improving column: phase optimal
            };
            for x in w.iter_mut() {
                *x = 0.0;
            }
            self.scatter_col(q, 1.0, &mut w);
            self.ftran(&mut w);
            self.stats.iterations += 1;
            if !self.step(phase, q, &w)? {
                return Ok(());
            }
        }
    }

    /// Phase-1 reduced costs use zero column costs (nonbasic columns sit
    /// feasibly at a bound, so only basic violations carry cost).
    fn reduced_cost(&self, phase: Phase, y: &[f64], j: usize) -> f64 {
        let c = match phase {
            Phase::One => 0.0,
            Phase::Two => self.cost(j),
        };
        c - self.dot_col(j, y)
    }

    fn eligible(&self, phase: Phase, y: &[f64], j: usize) -> Option<f64> {
        match self.status[j] {
            ColStatus::Basic => None,
            _ if self.up[j] - self.lo[j] <= FIXED_TOL => None,
            ColStatus::AtLower => {
                let d = self.reduced_cost(phase, y, j);
                (d < -DUAL_TOL).then_some(d)
            }
            ColStatus::AtUpper => {
                let d = self.reduced_cost(phase, y, j);
                (d > DUAL_TOL).then_some(d)
            }
        }
    }

    /// Chooses the entering column: Dantzig's rule (largest |reduced
    /// cost|) over cyclic partial-pricing blocks, or Bland's rule (first
    /// eligible index) while anti-cycling is active.
    fn price(&mut self, phase: Phase, y: &[f64]) -> Option<usize> {
        let total = self.sf.total();
        if total == 0 {
            return None;
        }
        if self.bland {
            return (0..total).find(|&j| self.eligible(phase, y, j).is_some());
        }
        let block = (total / 8).max(64);
        let mut best: Option<(usize, f64)> = None;
        for s in 0..total {
            let j = (self.pricing_cursor + s) % total;
            if let Some(d) = self.eligible(phase, y, j) {
                if best.is_none_or(|(_, bd)| d.abs() > bd.abs()) {
                    best = Some((j, d));
                }
            }
            if (s + 1) % block == 0 {
                if let Some((bj, _)) = best {
                    self.pricing_cursor = (j + 1) % total;
                    return Some(bj);
                }
            }
        }
        best.map(|(bj, _)| {
            self.pricing_cursor = (bj + 1) % total;
            bj
        })
    }

    /// Bounded-variable ratio test + pivot (or bound flip) for entering
    /// column `q` with FTRANed direction `w`. Returns `false` when the
    /// phase must stop (phase-1 stall with no breakpoint).
    fn step(&mut self, phase: Phase, q: usize, w: &[f64]) -> Result<bool, Abort> {
        let from_lower = self.status[q] == ColStatus::AtLower;
        // Entering moves by `σ · t`, t ≥ 0.
        let sigma = if from_lower { 1.0 } else { -1.0 };
        let mut t_row = f64::INFINITY;
        let mut leave: Option<(usize, bool)> = None; // (row, leaves at upper)
        for (r, &wr) in w.iter().enumerate() {
            if wr.abs() <= PIVOT_TOL {
                continue;
            }
            // d xb[r] / d t
            let slope = -sigma * wr;
            let c = self.basic[r] as usize;
            let (lb, ub, x) = (self.lo[c], self.up[c], self.xb[r]);
            let (limit, at_upper) = if phase == Phase::One && x < lb - FEAS_TOL {
                // Infeasible below: the first breakpoint is reaching lb.
                if slope > 0.0 {
                    ((lb - x) / slope, false)
                } else {
                    continue;
                }
            } else if phase == Phase::One && x > ub + FEAS_TOL {
                if slope < 0.0 {
                    ((ub - x) / slope, true)
                } else {
                    continue;
                }
            } else if slope > 0.0 {
                if !ub.is_finite() {
                    continue;
                }
                ((ub - x) / slope, true)
            } else {
                ((lb - x) / slope, false)
            };
            let limit = limit.max(0.0);
            let better = match leave {
                None => limit < t_row,
                Some((pr, _)) => {
                    limit < t_row - RATIO_TIE_TOL
                        || (limit < t_row + RATIO_TIE_TOL
                            && if self.bland {
                                self.basic[r] < self.basic[pr]
                            } else {
                                wr.abs() > w[pr].abs()
                            })
                }
            };
            if better {
                t_row = limit;
                leave = Some((r, at_upper));
            }
        }
        let range = self.up[q] - self.lo[q];
        if range < t_row {
            // The entering variable reaches its opposite bound first:
            // flip it, no basis change.
            self.update_xb(sigma * range, w);
            self.status[q] = if from_lower {
                ColStatus::AtUpper
            } else {
                ColStatus::AtLower
            };
            self.note_progress(range);
            return Ok(true);
        }
        let Some((r, at_upper)) = leave else {
            return match phase {
                Phase::Two => Err(Abort::Lp(LpError::Unbounded)),
                // Phase 1 is bounded below by zero, so a missing
                // breakpoint is numerical; stop and let the feasibility
                // check decide.
                Phase::One => Ok(false),
            };
        };
        self.update_xb(sigma * t_row, w);
        let lcol = self.basic[r] as usize;
        self.status[lcol] = if at_upper {
            ColStatus::AtUpper
        } else {
            ColStatus::AtLower
        };
        self.row_of[lcol] = u32::MAX;
        self.push_eta(w, r);
        self.basic[r] = q as u32;
        self.status[q] = ColStatus::Basic;
        self.row_of[q] = r as u32;
        self.xb[r] = if from_lower {
            self.lo[q] + t_row
        } else {
            self.up[q] - t_row
        };
        self.note_progress(t_row);
        Ok(true)
    }

    /// `xb ← xb − Δ · w` for an entering move of `Δ = σt`.
    fn update_xb(&mut self, delta: f64, w: &[f64]) {
        if delta == 0.0 {
            return;
        }
        for (r, &wr) in w.iter().enumerate() {
            if wr != 0.0 {
                self.xb[r] -= delta * wr;
            }
        }
    }

    fn note_progress(&mut self, t: f64) {
        if t <= DEGEN_TOL {
            self.degenerate_run += 1;
            if self.degenerate_run > DEGENERATE_LIMIT {
                self.bland = true;
            }
        } else {
            self.degenerate_run = 0;
            self.bland = false;
        }
    }

    /// Structural values, clamped against tolerance-level drift.
    fn extract(&self) -> Vec<f64> {
        (0..self.sf.n)
            .map(|j| {
                let v = match self.status[j] {
                    ColStatus::Basic => self.xb[self.row_of[j] as usize],
                    ColStatus::AtLower => self.lo[j],
                    ColStatus::AtUpper => self.up[j],
                };
                let v = v.max(self.lo[j]);
                if self.up[j].is_finite() {
                    v.min(self.up[j])
                } else {
                    v
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 5.0);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn ge_rows_need_phase_one() {
        // min 2x + 3y s.t. x + y ≥ 4, x + 2y ≥ 6 → (2, 2), obj 10.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 3.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        p.add_constraint([(x, 1.0), (y, 2.0)], Relation::Ge, 6.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 10.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x − y = 1 → (3, 2).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        p.add_constraint([(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, 10.0, 1.0);
        p.add_constraint([(x, 1.0)], Relation::Ge, 5.0);
        p.add_constraint([(x, 1.0)], Relation::Le, 3.0);
        assert_eq!(p.solve_lp().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint([(x, -1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve_lp().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn implicit_upper_bounds_bind() {
        // No constraint rows at all: the box does the bounding.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, 7.0, 2.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 14.0);
        assert_close(s.value(x), 7.0);
    }

    #[test]
    fn nonzero_and_negative_lower_bounds() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 2.0, f64::INFINITY, 1.0);
        let y = p.add_continuous("y", 3.0, 10.0, 1.0);
        let z = p.add_continuous("z", -5.0, 5.0, 1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 7.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 7.0 - 5.0);
        assert_close(s.value(z), -5.0);
        assert!(s.value(x) >= 2.0 - 1e-9);
        assert!(s.value(y) >= 3.0 - 1e-9);
    }

    #[test]
    fn fixed_variable() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 4.0, 4.0, 3.0);
        let y = p.add_continuous("y", 0.0, 2.0, 1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.value(x), 4.0);
        assert_close(s.value(y), 1.0);
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn infinite_lower_bound_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", f64::NEG_INFINITY, 0.0, 1.0);
        assert_eq!(
            p.solve_lp().unwrap_err(),
            LpError::UnsupportedBound { var: x }
        );
    }

    #[test]
    fn beale_degenerate_instance_terminates() {
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_continuous("x1", 0.0, f64::INFINITY, -0.75);
        let x2 = p.add_continuous("x2", 0.0, f64::INFINITY, 150.0);
        let x3 = p.add_continuous("x3", 0.0, f64::INFINITY, -0.02);
        let x4 = p.add_continuous("x4", 0.0, f64::INFINITY, 6.0);
        p.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -1.0 / 25.0), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -1.0 / 50.0), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint([(x3, 1.0)], Relation::Le, 1.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn redundant_equalities_survive() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 2.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 4.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(Sense::Minimize);
        let s = p.solve_lp().unwrap();
        assert_close(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn warm_start_resolves_after_bound_flip() {
        // Solve, tighten one variable's bound (the branch-and-bound
        // child move), re-solve warm: same optimum as a cold solve, in
        // fewer iterations.
        let mut p = Problem::new(Sense::Maximize);
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_continuous(format!("x{i}"), 0.0, 1.0, 1.0 + 0.25 * i as f64))
            .collect();
        for k in 0..4 {
            let terms: Vec<_> = (0..n)
                .filter(|j| (j + k) % 3 != 0)
                .map(|j| (vars[j], 1.0 + 0.5 * ((j + k) % 4) as f64))
                .collect();
            p.add_constraint(terms, Relation::Le, 3.0 + k as f64);
        }
        let lower: Vec<f64> = p.vars.iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = p.vars.iter().map(|v| v.upper).collect();
        let (root, basis, _) = p.solve_lp_with_basis(&lower, &upper, None).unwrap();
        // Flip x0's upper bound to 0 (the "down" child).
        let mut child_upper = upper.clone();
        child_upper[0] = 0.0;
        let (warm_sol, _, warm_stats) = p
            .solve_lp_with_basis(&lower, &child_upper, Some(&basis))
            .unwrap();
        let (cold_sol, _, cold_stats) = p.solve_lp_with_basis(&lower, &child_upper, None).unwrap();
        assert!((warm_sol.objective - cold_sol.objective).abs() < 1e-8);
        assert!(warm_sol.objective <= root.objective + 1e-8);
        assert!(
            warm_stats.iterations <= cold_stats.iterations,
            "warm start ({}) should not pivot more than cold ({})",
            warm_stats.iterations,
            cold_stats.iterations
        );
    }

    #[test]
    fn stale_basis_is_ignored_not_fatal() {
        let mut small = Problem::new(Sense::Maximize);
        let x = small.add_continuous("x", 0.0, 2.0, 1.0);
        let (_, tiny_basis, _) = small.solve_lp_with_basis(&[0.0], &[2.0], None).unwrap();
        let mut big = Problem::new(Sense::Maximize);
        let a = big.add_continuous("a", 0.0, 1.0, 1.0);
        let b = big.add_continuous("b", 0.0, 1.0, 2.0);
        big.add_constraint([(a, 1.0), (b, 1.0)], Relation::Le, 1.5);
        let (sol, _, _) = big
            .solve_lp_with_basis(&[0.0, 0.0], &[1.0, 1.0], Some(&tiny_basis))
            .unwrap();
        assert_close(sol.objective, 2.5);
        let _ = x;
    }

    #[test]
    fn refactorization_kicks_in_on_long_solves() {
        // A transportation-like LP big enough to exceed REFACTOR_ETAS
        // pivots would be slow to hand-build; instead force many pivots
        // with a staircase chain and just check the counters are sane.
        let mut p = Problem::new(Sense::Minimize);
        let n = 150;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_continuous(format!("x{i}"), 0.0, f64::INFINITY, 1.0 + (i % 7) as f64))
            .collect();
        for i in 0..n - 1 {
            p.add_constraint([(vars[i], 1.0), (vars[i + 1], 1.0)], Relation::Ge, 2.0);
        }
        let s = p.solve_lp().unwrap();
        assert!(s.objective > 0.0);
        let lower = vec![0.0; n];
        let upper = vec![f64::INFINITY; n];
        let (_, _, stats) = p.solve_lp_with_basis(&lower, &upper, None).unwrap();
        assert!(stats.iterations > 0);
        assert!(stats.refactorizations >= 1);
        // Only *update* etas count toward the rebuild trigger. Counting
        // the (≈ m-long) fresh factorization too would refactorize on
        // every subsequent pivot — an O(m²)-per-iteration regression.
        assert!(
            stats.refactorizations <= 1 + stats.iterations / REFACTOR_ETAS as u64 + 1,
            "refactorized {} times in {} iterations",
            stats.refactorizations,
            stats.iterations
        );
    }

    #[test]
    fn matches_dense_reference_on_fixed_lps() {
        // A few structurally different LPs: sparse and dense must agree
        // to high precision.
        let mut problems: Vec<Problem> = Vec::new();
        {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_continuous("x", 0.0, 4.0, 3.0);
            let y = p.add_continuous("y", 1.0, 6.0, 5.0);
            p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
            p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
            problems.push(p);
        }
        {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_continuous("x", -2.0, 2.0, 1.0);
            let y = p.add_continuous("y", -2.0, 2.0, -1.0);
            let z = p.add_continuous("z", 0.0, f64::INFINITY, 0.5);
            p.add_constraint([(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Eq, 1.0);
            p.add_constraint([(x, 1.0), (y, -1.0)], Relation::Ge, -1.5);
            problems.push(p);
        }
        for p in &problems {
            let sparse = p.solve_lp().unwrap();
            let dense = p.solve_lp_dense().unwrap();
            assert!(
                (sparse.objective - dense.objective).abs() < 1e-9,
                "sparse {} vs dense {}",
                sparse.objective,
                dense.objective
            );
        }
    }
}
