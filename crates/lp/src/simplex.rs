//! Dense two-phase primal simplex.
//!
//! The solver works on the standard form `min c'y, Ay {≤,=,≥} b, y ≥ 0`
//! obtained by shifting every variable to a zero lower bound and adding
//! an explicit bound row for each finite upper bound. Phase 1 minimizes
//! the sum of artificial variables to find a basic feasible solution;
//! phase 2 optimizes the real objective. Entering variables are chosen by
//! Dantzig's rule, falling back to Bland's rule after a run of degenerate
//! pivots to guarantee termination.

// Dense tableau arithmetic is clearest with explicit indices; the
// iterator rewrites clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::model::{LpError, LpSolution, Problem, Relation, Sense, VarId};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

const FEAS_TOL: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-9;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERATE_LIMIT: u32 = 40;

/// Solves the LP relaxation of `problem` with the variable bounds
/// overridden by `lower` / `upper` (used by branch and bound to tighten
/// bounds per node).
pub(crate) fn solve_lp_with_bounds(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
) -> Result<LpSolution, LpError> {
    let n = problem.vars.len();
    assert_eq!(lower.len(), n, "lower bound count mismatch");
    assert_eq!(upper.len(), n, "upper bound count mismatch");
    for (j, (&l, &u)) in lower.iter().zip(upper).enumerate() {
        if !l.is_finite() {
            return Err(LpError::UnsupportedBound { var: VarId(j) });
        }
        if l > u + FEAS_TOL {
            // An inverted bound renders the node infeasible (this is a
            // routine outcome while branching, not a modeling error).
            return Err(LpError::Infeasible);
        }
    }

    // --- Build rows over the shifted variables y_j = x_j - l_j ≥ 0. ---
    struct Row {
        coeffs: Vec<f64>, // dense over structural variables
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints.len() + n);
    let row_terms = problem.rows();
    for (c, terms) in problem.constraints.iter().zip(&row_terms) {
        let mut coeffs = vec![0.0; n];
        let mut shift = 0.0;
        for &(j, a) in terms {
            coeffs[j] += a;
            shift += a * lower[j];
        }
        rows.push(Row {
            coeffs,
            relation: c.relation,
            rhs: c.rhs - shift,
        });
    }
    for j in 0..n {
        let range = upper[j] - lower[j];
        if range.is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            rows.push(Row {
                coeffs,
                relation: Relation::Le,
                rhs: range.max(0.0),
            });
        }
    }

    // Normalize to rhs ≥ 0.
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for a in &mut row.coeffs {
                *a = -*a;
            }
            row.relation = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    // --- Assemble the tableau. ---
    let m = rows.len();
    let num_slacks = rows.iter().filter(|r| r.relation != Relation::Eq).count();
    let num_artificials = rows.iter().filter(|r| r.relation != Relation::Le).count();
    let total = n + num_slacks + num_artificials;
    let mut a: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut b: Vec<f64> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let art_start = n + num_slacks;
    {
        let mut slack_cursor = n;
        let mut art_cursor = art_start;
        for row in &rows {
            let mut dense = vec![0.0; total];
            dense[..n].copy_from_slice(&row.coeffs);
            match row.relation {
                Relation::Le => {
                    dense[slack_cursor] = 1.0;
                    basis.push(slack_cursor);
                    slack_cursor += 1;
                }
                Relation::Ge => {
                    dense[slack_cursor] = -1.0;
                    slack_cursor += 1;
                    dense[art_cursor] = 1.0;
                    basis.push(art_cursor);
                    art_cursor += 1;
                }
                Relation::Eq => {
                    dense[art_cursor] = 1.0;
                    basis.push(art_cursor);
                    art_cursor += 1;
                }
            }
            a.push(dense);
            b.push(row.rhs);
        }
    }

    let max_iters = 20_000 + 50 * (m + total);
    let mut tableau = Tableau {
        a,
        b,
        basis,
        total,
        max_iters,
    };

    // --- Phase 1 ---
    if num_artificials > 0 {
        let mut cost = vec![0.0; total];
        for j in art_start..total {
            cost[j] = 1.0;
        }
        // Price out the basic artificials.
        let mut obj = 0.0;
        let mut cost_row = cost.clone();
        for i in 0..m {
            if tableau.basis[i] >= art_start {
                for j in 0..total {
                    cost_row[j] -= tableau.a[i][j];
                }
                obj -= tableau.b[i];
            }
        }
        tableau.optimize(&mut cost_row, &mut obj, total)?;
        if -obj > FEAS_TOL {
            return Err(LpError::Infeasible);
        }
        tableau.evict_artificials(art_start);
    }

    // --- Phase 2 ---
    let flip = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; total];
    for (j, v) in problem.vars.iter().enumerate() {
        cost[j] = flip * v.objective;
    }
    let mut cost_row = cost.clone();
    let mut obj = 0.0;
    for i in 0..tableau.a.len() {
        let ci = cost[tableau.basis[i]];
        if ci != 0.0 {
            for j in 0..total {
                cost_row[j] -= ci * tableau.a[i][j];
            }
            obj -= ci * tableau.b[i];
        }
    }
    // Artificials may not re-enter in phase 2.
    tableau.optimize(&mut cost_row, &mut obj, art_start)?;

    // --- Extract the solution. ---
    let mut y = vec![0.0; n];
    for (i, &bv) in tableau.basis.iter().enumerate() {
        if bv < n {
            y[bv] = tableau.b[i];
        }
    }
    let values: Vec<f64> = (0..n).map(|j| lower[j] + y[j].max(0.0)).collect();
    let objective: f64 = problem
        .vars
        .iter()
        .enumerate()
        .map(|(j, v)| v.objective * values[j])
        .sum();
    Ok(LpSolution { objective, values })
}

struct Tableau {
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    basis: Vec<usize>,
    total: usize,
    max_iters: usize,
}

impl Tableau {
    /// Runs the simplex to optimality for the given (mutable) reduced
    /// cost row. Columns `>= entering_limit` are barred from entering.
    fn optimize(
        &mut self,
        cost_row: &mut [f64],
        obj: &mut f64,
        entering_limit: usize,
    ) -> Result<(), LpError> {
        let mut degenerate_run = 0u32;
        // Basis signatures seen during the current degenerate run. A
        // repeat means Dantzig's rule is genuinely cycling (not merely
        // stalling), so Bland's rule latches on permanently — it is
        // guaranteed to terminate from any basis.
        let mut seen: HashSet<u64> = HashSet::new();
        let mut cycling = false;
        for _ in 0..self.max_iters {
            let bland = cycling || degenerate_run > DEGENERATE_LIMIT;
            let entering = self.choose_entering(cost_row, entering_limit, bland);
            let Some(e) = entering else {
                return Ok(()); // optimal
            };
            let Some(leave) = self.choose_leaving(e, bland) else {
                return Err(LpError::Unbounded);
            };
            if self.b[leave] < FEAS_TOL {
                degenerate_run += 1;
                if !cycling && !seen.insert(self.basis_signature()) {
                    cycling = true;
                }
            } else {
                degenerate_run = 0;
                seen.clear();
            }
            self.pivot(leave, e, cost_row, obj);
        }
        Err(LpError::IterationLimit)
    }

    /// Hash of the current basis (the rows' basic columns): degenerate
    /// pivots that revisit a signature have revisited the vertex.
    fn basis_signature(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.basis.hash(&mut h);
        h.finish()
    }

    fn choose_entering(&self, cost_row: &[f64], limit: usize, bland: bool) -> Option<usize> {
        if bland {
            (0..limit).find(|&j| cost_row[j] < -FEAS_TOL)
        } else {
            let mut best = None;
            let mut best_cost = -FEAS_TOL;
            for (j, &c) in cost_row.iter().enumerate().take(limit) {
                if c < best_cost {
                    best_cost = c;
                    best = Some(j);
                }
            }
            best
        }
    }

    fn choose_leaving(&self, entering: usize, bland: bool) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None; // (ratio, row)
        for i in 0..self.a.len() {
            let a = self.a[i][entering];
            if a > PIVOT_TOL {
                let ratio = self.b[i] / a;
                let better = match best {
                    None => true,
                    Some((r, row)) => {
                        ratio < r - FEAS_TOL
                            || (ratio < r + FEAS_TOL
                                && if bland {
                                    self.basis[i] < self.basis[row]
                                } else {
                                    a > self.a[row][entering]
                                })
                    }
                };
                if better {
                    best = Some((ratio, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn pivot(&mut self, row: usize, col: usize, cost_row: &mut [f64], obj: &mut f64) {
        let pivot = self.a[row][col];
        debug_assert!(pivot.abs() > PIVOT_TOL, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        for j in 0..self.total {
            self.a[row][j] *= inv;
        }
        self.b[row] *= inv;
        self.a[row][col] = 1.0; // fight round-off drift
        for i in 0..self.a.len() {
            if i != row {
                let factor = self.a[i][col];
                if factor != 0.0 {
                    for j in 0..self.total {
                        self.a[i][j] -= factor * self.a[row][j];
                    }
                    self.a[i][col] = 0.0;
                    self.b[i] -= factor * self.b[row];
                }
            }
        }
        let factor = cost_row[col];
        if factor != 0.0 {
            for j in 0..self.total {
                cost_row[j] -= factor * self.a[row][j];
            }
            cost_row[col] = 0.0;
            *obj -= factor * self.b[row];
        }
        self.basis[row] = col;
    }

    /// After phase 1: pivot zero-level artificial variables out of the
    /// basis, deleting rows that prove redundant.
    fn evict_artificials(&mut self, art_start: usize) {
        let mut i = 0;
        while i < self.a.len() {
            if self.basis[i] >= art_start {
                // Find any structural or slack column to pivot in.
                let col = (0..art_start).find(|&j| self.a[i][j].abs() > PIVOT_TOL);
                match col {
                    Some(c) => {
                        // b[i] is ~0, so this degenerate pivot preserves
                        // feasibility regardless of sign.
                        let mut dummy_cost = vec![0.0; self.total];
                        let mut dummy_obj = 0.0;
                        self.pivot(i, c, &mut dummy_cost, &mut dummy_obj);
                        i += 1;
                    }
                    None => {
                        // Redundant row: remove it.
                        self.a.swap_remove(i);
                        self.b.swap_remove(i);
                        self.basis.swap_remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 5.0);
        p.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn chvatal_cycling_instance_terminates() {
        // Chvátal's classic cycling LP (Linear Programming, 1983): under
        // plain Dantzig pricing with index tie-breaking the simplex
        // revisits its starting basis after six degenerate pivots. The
        // basis-signature detector must latch Bland's rule and reach the
        // optimum, −1 at (1, 0, 1, 0).
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_continuous("x1", 0.0, f64::INFINITY, -10.0);
        let x2 = p.add_continuous("x2", 0.0, f64::INFINITY, 57.0);
        let x3 = p.add_continuous("x3", 0.0, f64::INFINITY, 9.0);
        let x4 = p.add_continuous("x4", 0.0, f64::INFINITY, 24.0);
        p.add_constraint(
            [(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            [(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint([(x1, 1.0)], Relation::Le, 1.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.objective, -1.0);
        assert_close(s.value(x1), 1.0);
        assert_close(s.value(x3), 1.0);
    }

    #[test]
    fn minimization_with_ge_rows_uses_phase_one() {
        // min 2x + 3y s.t. x + y ≥ 4, x + 2y ≥ 6 → (2, 2), obj 10.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 3.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        p.add_constraint([(x, 1.0), (y, 2.0)], Relation::Ge, 6.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.objective, 10.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 → (3, 2), obj 5.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        p.add_constraint([(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, 10.0, 1.0);
        p.add_constraint([(x, 1.0)], Relation::Ge, 5.0);
        p.add_constraint([(x, 1.0)], Relation::Le, 3.0);
        assert_eq!(p.solve_lp_dense().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint([(x, -1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve_lp_dense().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bounded_by_variable_upper_bounds_only() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 0.0, 7.0, 2.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.objective, 14.0);
        assert_close(s.value(x), 7.0);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y, x ≥ 2, y ∈ [3, 10], x + y ≥ 7 → x=2..? obj at
        // (2, 5) = 7? or (4, 3) = 7. Optimum value 7 either way.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 2.0, f64::INFINITY, 1.0);
        let y = p.add_continuous("y", 3.0, 10.0, 1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 7.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.objective, 7.0);
        assert!(s.value(x) >= 2.0 - 1e-9);
        assert!(s.value(y) >= 3.0 - 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x ∈ [-5, 5] → -5.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", -5.0, 5.0, 1.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.value(x), -5.0);
    }

    #[test]
    fn infinite_lower_bound_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", f64::NEG_INFINITY, 0.0, 1.0);
        assert_eq!(
            p.solve_lp_dense().unwrap_err(),
            LpError::UnsupportedBound { var: x }
        );
    }

    #[test]
    fn fixed_variable() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_continuous("x", 4.0, 4.0, 3.0);
        let y = p.add_continuous("y", 0.0, 2.0, 1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.value(x), 4.0);
        assert_close(s.value(y), 1.0);
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic cycling-prone instance (Beale): without anti-cycling,
        // Dantzig's rule can loop forever.
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_continuous("x1", 0.0, f64::INFINITY, -0.75);
        let x2 = p.add_continuous("x2", 0.0, f64::INFINITY, 150.0);
        let x3 = p.add_continuous("x3", 0.0, f64::INFINITY, -0.02);
        let x4 = p.add_continuous("x4", 0.0, f64::INFINITY, 6.0);
        p.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -1.0 / 25.0), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -1.0 / 50.0), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint([(x3, 1.0)], Relation::Le, 1.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn redundant_equalities_survive_phase_one() {
        // x + y = 4 stated twice; optimum unaffected.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_continuous("y", 0.0, f64::INFINITY, 2.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.objective, 4.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(Sense::Minimize);
        let s = p.solve_lp_dense().unwrap();
        assert_close(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn matches_bruteforce_on_random_box_lps() {
        // Random LPs over a box with ≤ constraints: the optimum lies at a
        // vertex of the feasible polytope; cross-check against sampling
        // every box corner that satisfies the constraints (the LP optimum
        // must be ≥ the best feasible corner for maximization).
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let nv = rng.random_range(2..5usize);
            let nc = rng.random_range(1..4usize);
            let mut p = Problem::new(Sense::Maximize);
            let vars: Vec<_> = (0..nv)
                .map(|i| p.add_continuous(format!("v{i}"), 0.0, 1.0, rng.random_range(-3.0..3.0)))
                .collect();
            let mut cons = Vec::new();
            for _ in 0..nc {
                let coeffs: Vec<f64> = (0..nv).map(|_| rng.random_range(-2.0..2.0)).collect();
                let rhs = rng.random_range(0.5..3.0);
                p.add_constraint(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                    Relation::Le,
                    rhs,
                );
                cons.push((coeffs, rhs));
            }
            let sol = match p.solve_lp_dense() {
                Ok(s) => s,
                Err(e) => panic!("box LP cannot be infeasible/unbounded: {e}"),
            };
            // Check feasibility of the reported point.
            for (coeffs, rhs) in &cons {
                let lhs: f64 = coeffs.iter().zip(&sol.values).map(|(c, v)| c * v).sum();
                assert!(lhs <= rhs + 1e-6, "reported point violates a constraint");
            }
            // Check it beats every feasible corner.
            for corner in 0u32..(1 << nv) {
                let point: Vec<f64> = (0..nv)
                    .map(|j| if corner & (1 << j) != 0 { 1.0 } else { 0.0 })
                    .collect();
                let feasible = cons.iter().all(|(coeffs, rhs)| {
                    coeffs.iter().zip(&point).map(|(c, v)| c * v).sum::<f64>() <= rhs + 1e-9
                });
                if feasible {
                    let val: f64 = p
                        .vars
                        .iter()
                        .zip(&point)
                        .map(|(v, x)| v.objective * x)
                        .sum();
                    assert!(
                        sol.objective >= val - 1e-6,
                        "corner {point:?} with value {val} beats LP optimum {}",
                        sol.objective
                    );
                }
            }
        }
    }
}
