//! A self-contained linear-programming and mixed-integer-programming
//! solver.
//!
//! The OCD paper's §3.4 formulates EOCD as a time-indexed 0/1 integer
//! program. No ILP solver bindings are available in this environment, so
//! this crate implements the required machinery from scratch:
//!
//! - [`Problem`]: a model-building API (variables with bounds and kinds,
//!   linear constraints, min/max objective). The constraint matrix is
//!   stored column-major, so sparse model generators can emit columns
//!   directly ([`Problem::new_constraint`] + [`Problem::add_column`]).
//! - A **sparse revised simplex** for the LP relaxation: CSC column
//!   storage, eta-file (product-form) basis factorization with periodic
//!   refactorization, bounded-variable pivoting (upper bounds implicit,
//!   not rows), Dantzig + partial pricing with a Bland's-rule
//!   anti-cycling fallback, and a [`Basis`] snapshot API for
//!   warm-started re-solves.
//! - A retained **dense two-phase simplex** reference
//!   ([`Problem::solve_lp_dense`]) that the sparse engine is
//!   differentially tested against.
//! - **Branch and bound** for integer variables: best-first on the LP
//!   bound, most-fractional branching, children warm-started from the
//!   parent basis, and deterministic batch-parallel node evaluation
//!   (the incumbent trace is byte-identical across thread counts).
//!
//! The solver is exact and deterministic, not industrial-strength; its
//! optimality is cross-checked against exhaustive enumeration and the
//! dense reference in the test suite.
//!
//! # Examples
//!
//! A 0/1 knapsack: maximize `3x + 4y + 5z` subject to
//! `2x + 3y + 4z ≤ 5`. The optimum picks `x` and `y` for value 7.
//!
//! ```
//! use ocd_lp::{Problem, Relation, Sense};
//!
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_binary("x", 3.0);
//! let y = p.add_binary("y", 4.0);
//! let z = p.add_binary("z", 5.0);
//! p.add_constraint([(x, 2.0), (y, 3.0), (z, 4.0)], Relation::Le, 5.0);
//! let sol = p.solve_mip(&Default::default()).unwrap();
//! assert_eq!(sol.objective.round() as i64, 7);
//! assert_eq!(sol.value(x).round() as i64, 1);
//! assert_eq!(sol.value(z).round() as i64, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod branch;
mod model;
mod simplex;
mod sparse;

pub use branch::{MipOptions, MipSolution};
pub use model::{ConId, LpError, LpSolution, Problem, Relation, Sense, VarId, VarKind};
pub use sparse::{Basis, LpStats};
