//! A self-contained linear-programming and mixed-integer-programming
//! solver.
//!
//! The OCD paper's §3.4 formulates EOCD as a time-indexed 0/1 integer
//! program. No ILP solver bindings are available in this environment, so
//! this crate implements the required machinery from scratch:
//!
//! - [`Problem`]: a model-building API (variables with bounds and kinds,
//!   linear constraints, min/max objective).
//! - A dense **two-phase primal simplex** for the LP relaxation
//!   (Dantzig's rule with a Bland's-rule fallback for anti-cycling).
//! - **Branch and bound** for integer variables (best-first on the LP
//!   bound, most-fractional branching).
//!
//! The solver targets the *small* instances the paper solves exactly
//! ("we calculate optimal solutions for small graphs"); it is exact and
//! deterministic, not industrial-strength. Its optimality is
//! cross-checked against exhaustive enumeration in the test suite.
//!
//! # Examples
//!
//! A 0/1 knapsack: maximize `3x + 4y + 5z` subject to
//! `2x + 3y + 4z ≤ 5`. The optimum picks `x` and `y` for value 7.
//!
//! ```
//! use ocd_lp::{Problem, Relation, Sense};
//!
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_binary("x", 3.0);
//! let y = p.add_binary("y", 4.0);
//! let z = p.add_binary("z", 5.0);
//! p.add_constraint([(x, 2.0), (y, 3.0), (z, 4.0)], Relation::Le, 5.0);
//! let sol = p.solve_mip(&Default::default()).unwrap();
//! assert_eq!(sol.objective.round() as i64, 7);
//! assert_eq!(sol.value(x).round() as i64, 1);
//! assert_eq!(sol.value(z).round() as i64, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod branch;
mod model;
mod simplex;

pub use branch::{MipOptions, MipSolution};
pub use model::{LpError, LpSolution, Problem, Relation, Sense, VarId, VarKind};
