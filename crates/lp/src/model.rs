//! Model-building API: variables, constraints, objective.

use std::error::Error;
use std::fmt;

/// Handle to a decision variable within its [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw index of the variable in the problem.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a constraint row within its [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConId(pub(crate) usize);

impl ConId {
    /// Raw index of the constraint in the problem.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Continuity class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// May take any real value within its bounds.
    Continuous,
    /// Must take an integer value within its bounds (binary = integer
    /// with bounds `[0, 1]`).
    Integer,
}

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// Internal variable record. The constraint matrix is stored
/// **column-major**: every variable carries its own sparse column as
/// `(row, coefficient)` pairs sorted by row. The sparse revised simplex
/// consumes these columns directly (they concatenate into a CSC
/// structure); row-oriented consumers (the dense reference simplex,
/// [`Problem::to_lp_format`]) transpose on demand.
#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub kind: VarKind,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
    /// Sparse column: `(constraint row, coefficient)`, sorted by row,
    /// one entry per row (duplicates are merged on insert).
    pub entries: Vec<(usize, f64)>,
}

/// Internal constraint record: only the row's relation and right-hand
/// side live here — the coefficients live in the variable columns.
#[derive(Debug, Clone)]
pub(crate) struct ConstraintDef {
    pub relation: Relation,
    pub rhs: f64,
}

/// Solver failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// No assignment satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The simplex hit its iteration limit (numerical trouble or a
    /// pathological instance).
    IterationLimit,
    /// Branch and bound hit its node limit before proving optimality.
    NodeLimit,
    /// A variable has an infinite lower bound, which this solver does
    /// not support (shift or split the variable).
    UnsupportedBound {
        /// The offending variable.
        var: VarId,
    },
    /// A variable's bounds are inverted (`lower > upper`).
    EmptyBounds {
        /// The offending variable.
        var: VarId,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => f.write_str("problem is infeasible"),
            LpError::Unbounded => f.write_str("problem is unbounded"),
            LpError::IterationLimit => f.write_str("simplex iteration limit reached"),
            LpError::NodeLimit => f.write_str("branch-and-bound node limit reached"),
            LpError::UnsupportedBound { var } => {
                write!(f, "variable #{} has an infinite lower bound", var.0)
            }
            LpError::EmptyBounds { var } => {
                write!(f, "variable #{} has lower bound above upper bound", var.0)
            }
        }
    }
}

impl Error for LpError {}

/// A solution to the LP relaxation.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Value per variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
}

impl LpSolution {
    /// Value of `var` in this solution.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }
}

/// A linear / mixed-integer optimization problem.
///
/// Build with [`Problem::new`], [`add_var`](Problem::add_var) and
/// [`add_constraint`](Problem::add_constraint); solve the LP relaxation
/// with [`solve_lp`](Problem::solve_lp) or the full MIP with
/// [`solve_mip`](Problem::solve_mip).
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<ConstraintDef>,
}

impl Problem {
    /// Creates an empty problem with the given optimization sense.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a variable with explicit kind, bounds `[lower, upper]`, and
    /// objective coefficient. Returns its handle.
    ///
    /// `upper` may be `f64::INFINITY`; `lower` must be finite (the
    /// simplex shifts variables to a zero lower bound).
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.into(),
            kind,
            lower,
            upper,
            objective,
            entries: Vec::new(),
        });
        id
    }

    /// Adds a continuous variable on `[lower, upper]`.
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        self.add_var(name, VarKind::Continuous, lower, upper, objective)
    }

    /// Adds a 0/1 integer variable.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_var(name, VarKind::Integer, 0.0, 1.0, objective)
    }

    /// Adds the constraint `Σ coef·var  relation  rhs`. Repeated
    /// variables in `terms` have their coefficients summed.
    ///
    /// This is the row-oriented convenience wrapper; model generators
    /// that know their columns up front should prefer
    /// [`new_constraint`](Problem::new_constraint) +
    /// [`add_column`](Problem::add_column), which build the sparse
    /// column storage directly.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) {
        let con = self.new_constraint(relation, rhs);
        for (v, c) in terms {
            self.add_term(con, v, c);
        }
    }

    /// Declares an empty constraint row `… relation rhs` and returns its
    /// handle. Coefficients are attached afterwards, either column-wise
    /// via [`add_column`](Problem::add_column) or one at a time via
    /// [`add_term`](Problem::add_term).
    pub fn new_constraint(&mut self, relation: Relation, rhs: f64) -> ConId {
        let id = ConId(self.constraints.len());
        self.constraints.push(ConstraintDef { relation, rhs });
        id
    }

    /// Adds `coeff · var` to the row `con` (coefficients for a repeated
    /// `(con, var)` pair are summed).
    pub fn add_term(&mut self, con: ConId, var: VarId, coeff: f64) {
        let entries = &mut self.vars[var.0].entries;
        match entries.binary_search_by_key(&con.0, |&(r, _)| r) {
            Ok(pos) => entries[pos].1 += coeff,
            Err(pos) => entries.insert(pos, (con.0, coeff)),
        }
    }

    /// Adds a variable together with its entire constraint column in one
    /// call: `entries` lists `(row, coefficient)` pairs against rows
    /// previously declared with [`new_constraint`](Problem::new_constraint).
    /// Duplicated rows in `entries` have their coefficients summed.
    ///
    /// This is the preferred path for sparse model generation — the
    /// column goes straight into the CSC storage the revised simplex
    /// consumes, with no row-major intermediate.
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
        objective: f64,
        entries: impl IntoIterator<Item = (ConId, f64)>,
    ) -> VarId {
        let id = self.add_var(name, kind, lower, upper, objective);
        for (con, coeff) in entries {
            debug_assert!(
                con.0 < self.constraints.len(),
                "column references unknown row"
            );
            self.add_term(con, id, coeff);
        }
        id
    }

    /// The constraint matrix transposed back to rows:
    /// `rows[i] = [(var, coeff), …]` sorted by variable index. Used by
    /// row-oriented consumers (dense simplex, LP-format export).
    pub(crate) fn rows(&self) -> Vec<Vec<(usize, f64)>> {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.constraints.len()];
        for (j, v) in self.vars.iter().enumerate() {
            for &(i, a) in &v.entries {
                rows[i].push((j, a));
            }
        }
        rows
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Whether any variable is integer-kind.
    #[must_use]
    pub fn has_integers(&self) -> bool {
        self.vars.iter().any(|v| v.kind == VarKind::Integer)
    }

    /// Solves the LP relaxation (integrality dropped) with the sparse
    /// revised simplex.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`],
    /// [`LpError::IterationLimit`], or bound errors.
    pub fn solve_lp(&self) -> Result<LpSolution, LpError> {
        let lower: Vec<f64> = self.vars.iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = self.vars.iter().map(|v| v.upper).collect();
        self.solve_lp_with_basis(&lower, &upper, None)
            .map(|(s, _, _)| s)
    }

    /// Solves the LP relaxation under overridden bounds with the sparse
    /// revised simplex, optionally warm-starting from a [`Basis`]
    /// returned by a previous solve of the same problem (typically under
    /// slightly different bounds — the branch-and-bound child pattern).
    /// Returns the solution, the optimal basis, and work counters.
    ///
    /// An incompatible `warm` basis is ignored (cold start), never an
    /// error.
    ///
    /// # Errors
    ///
    /// Same as [`solve_lp`](Problem::solve_lp).
    pub fn solve_lp_with_basis(
        &self,
        lower: &[f64],
        upper: &[f64],
        warm: Option<&crate::sparse::Basis>,
    ) -> Result<(LpSolution, crate::sparse::Basis, crate::sparse::LpStats), LpError> {
        let sf = crate::sparse::StandardForm::new(self);
        let (values, basis, stats) = crate::sparse::solve_standard(&sf, lower, upper, warm)?;
        let objective = self
            .vars
            .iter()
            .zip(&values)
            .map(|(v, x)| v.objective * x)
            .sum();
        Ok((LpSolution { objective, values }, basis, stats))
    }

    /// Solves the LP relaxation with the retained dense two-phase
    /// simplex — the slow reference implementation the sparse engine is
    /// differentially tested against.
    ///
    /// # Errors
    ///
    /// Same as [`solve_lp`](Problem::solve_lp).
    pub fn solve_lp_dense(&self) -> Result<LpSolution, LpError> {
        let lower: Vec<f64> = self.vars.iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = self.vars.iter().map(|v| v.upper).collect();
        crate::simplex::solve_lp_with_bounds(self, &lower, &upper)
    }

    /// Solves the mixed-integer program by branch and bound.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`] if no integer-feasible point exists,
    /// [`LpError::Unbounded`] if the relaxation is unbounded,
    /// [`LpError::NodeLimit`] if optimality was not proven within the
    /// node budget.
    pub fn solve_mip(&self, options: &crate::MipOptions) -> Result<crate::MipSolution, LpError> {
        crate::branch::solve_mip(self, options)
    }

    /// [`solve_mip`](Problem::solve_mip) with a
    /// [`SpanRecorder`](ocd_core::span::SpanRecorder) attached: every
    /// branch-and-bound round and node lands in the recorder as a span
    /// (`bnb.round`, `bnb.node.{branched,pruned,incumbent,infeasible}`
    /// with `id`/`depth`/`lp_iterations`/`bound_millis` counters), and
    /// incumbent improvements fire `bnb.incumbent` events — a search
    /// timeline you can export to Chrome/Perfetto.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve_mip`](Problem::solve_mip).
    pub fn solve_mip_with_spans<S: ocd_core::span::SpanRecorder>(
        &self,
        options: &crate::MipOptions,
        spans: &mut S,
    ) -> Result<crate::MipSolution, LpError> {
        crate::branch::solve_mip_with_spans(self, options, spans)
    }

    /// Renders the model in (a subset of) the CPLEX LP text format,
    /// which is handy for eyeballing a formulation or feeding it to an
    /// external solver for cross-checking.
    #[must_use]
    pub fn to_lp_format(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(match self.sense {
            Sense::Minimize => "Minimize\n obj:",
            Sense::Maximize => "Maximize\n obj:",
        });
        for (i, v) in self.vars.iter().enumerate() {
            if v.objective != 0.0 {
                let _ = write!(out, " {:+} x{i}", v.objective);
            }
        }
        out.push_str("\nSubject To\n");
        let rows = self.rows();
        for (ci, c) in self.constraints.iter().enumerate() {
            let _ = write!(out, " c{ci}:");
            for &(v, coef) in &rows[ci] {
                let _ = write!(out, " {coef:+} x{v}");
            }
            let _ = writeln!(out, " {} {}", c.relation, c.rhs);
        }
        out.push_str("Bounds\n");
        for (i, v) in self.vars.iter().enumerate() {
            if v.upper.is_infinite() {
                let _ = writeln!(out, " {} <= x{i}", v.lower);
            } else {
                let _ = writeln!(out, " {} <= x{i} <= {}", v.lower, v.upper);
            }
        }
        let integers: Vec<String> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| format!("x{i}"))
            .collect();
        if !integers.is_empty() {
            out.push_str("General\n ");
            out.push_str(&integers.join(" "));
            out.push('\n');
        }
        out.push_str("End\n");
        out
    }

    /// Name of a variable (for diagnostics).
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_introspect() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, 10.0, 1.0);
        let y = p.add_binary("y", -2.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert!(p.has_integers());
        assert_eq!(p.var_name(x), "x");
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
    }

    #[test]
    fn duplicate_terms_merge() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_continuous("x", 0.0, 1.0, 1.0);
        p.add_constraint([(x, 1.0), (x, 2.0)], Relation::Eq, 3.0);
        assert_eq!(p.vars[0].entries, vec![(0, 3.0)]);
        assert_eq!(p.rows(), vec![vec![(0, 3.0)]]);
    }

    #[test]
    fn column_api_matches_row_api() {
        // Build the same model through both APIs; the internal column
        // storage must be identical.
        let build_rowwise = || {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_continuous("x", 0.0, 4.0, 1.0);
            let y = p.add_continuous("y", 0.0, 4.0, 2.0);
            p.add_constraint([(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
            p.add_constraint([(y, -1.0)], Relation::Ge, -2.0);
            p
        };
        let build_colwise = || {
            let mut p = Problem::new(Sense::Minimize);
            let c0 = p.new_constraint(Relation::Le, 6.0);
            let c1 = p.new_constraint(Relation::Ge, -2.0);
            p.add_column("x", VarKind::Continuous, 0.0, 4.0, 1.0, [(c0, 1.0)]);
            p.add_column(
                "y",
                VarKind::Continuous,
                0.0,
                4.0,
                2.0,
                [(c0, 3.0), (c1, -1.0)],
            );
            p
        };
        let a = build_rowwise();
        let b = build_colwise();
        assert_eq!(a.to_lp_format(), b.to_lp_format());
        for (va, vb) in a.vars.iter().zip(&b.vars) {
            assert_eq!(va.entries, vb.entries);
        }
    }

    #[test]
    fn lp_format_mentions_everything() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x", 3.0);
        let y = p.add_continuous("y", 1.0, f64::INFINITY, 0.5);
        p.add_constraint([(x, 2.0), (y, -1.0)], Relation::Ge, 0.0);
        let text = p.to_lp_format();
        assert!(text.contains("Maximize"));
        assert!(text.contains("+3 x0"));
        assert!(text.contains(">= 0"));
        assert!(text.contains("General\n x0"));
        assert!(text.contains("1 <= x1"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn error_display() {
        assert_eq!(LpError::Infeasible.to_string(), "problem is infeasible");
        assert!(LpError::UnsupportedBound { var: VarId(3) }
            .to_string()
            .contains("#3"));
    }
}
