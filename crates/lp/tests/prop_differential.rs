//! Differential property tests for the sparse revised simplex and the
//! warm-started parallel branch and bound.
//!
//! Two oracles, one per engine:
//!
//! - **LP**: the sparse engine ([`Problem::solve_lp`]) must agree with
//!   the retained dense two-phase reference
//!   ([`Problem::solve_lp_dense`]) on every random bounded LP — same
//!   objective within 1e-9 (relative), same infeasible/unbounded
//!   verdict — and the sparse point must itself satisfy every
//!   constraint and bound it was given.
//! - **MIP**: the batch-parallel branch and bound at 4 threads must
//!   return bit-identical results to the sequential solve (objective,
//!   values, node count, incumbent trace), and both must match
//!   exhaustive enumeration on random small 0/1 programs.
//!
//! Coefficients are drawn from a 0.25 grid so optima sit at exactly
//! representable vertices instead of knife-edge tolerances.

use ocd_lp::{LpError, LpSolution, MipOptions, Problem, Relation, Sense, VarId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LHS_TOL: f64 = 1e-6;

/// A quarter-integer in `[lo/4, hi/4]`.
fn grid(rng: &mut StdRng, lo: i32, hi: i32) -> f64 {
    f64::from(rng.random_range(lo..=hi)) * 0.25
}

type Row = (Vec<(VarId, f64)>, Relation, f64);

struct RandomLp {
    problem: Problem,
    bounds: Vec<(VarId, f64, f64)>,
    rows: Vec<Row>,
}

/// A small LP with grid coefficients: finite lower bounds (the sparse
/// engine requires them), a mix of finite and infinite uppers, and
/// Le/Ge/Eq rows at ~60% density. Feasibility is not forced — both
/// engines must agree on the verdict either way.
fn random_lp(seed: u64) -> RandomLp {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(1..=8usize);
    let m = rng.random_range(1..=6usize);
    let sense = if rng.random_bool(0.5) {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut problem = Problem::new(sense);
    let mut bounds = Vec::new();
    for j in 0..n {
        let lower = grid(&mut rng, -8, 0);
        let upper = if rng.random_bool(0.25) {
            f64::INFINITY
        } else {
            lower + grid(&mut rng, 0, 16)
        };
        let objective = grid(&mut rng, -12, 12);
        let v = problem.add_continuous(format!("x{j}"), lower, upper, objective);
        bounds.push((v, lower, upper));
    }
    let mut rows = Vec::new();
    for _ in 0..m {
        let mut terms = Vec::new();
        for &(v, _, _) in &bounds {
            if rng.random_bool(0.6) {
                let c = grid(&mut rng, -8, 8);
                if c != 0.0 {
                    terms.push((v, c));
                }
            }
        }
        if terms.is_empty() {
            continue;
        }
        let relation = match rng.random_range(0..3u8) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        let rhs = grid(&mut rng, -10, 20);
        problem.add_constraint(terms.iter().copied(), relation, rhs);
        rows.push((terms, relation, rhs));
    }
    RandomLp {
        problem,
        bounds,
        rows,
    }
}

/// Asserts `sol` satisfies every row and bound of `lp` within `LHS_TOL`.
fn assert_point_feasible(lp: &RandomLp, sol: &LpSolution) -> Result<(), TestCaseError> {
    for &(v, lower, upper) in &lp.bounds {
        let x = sol.value(v);
        prop_assert!(
            x >= lower - LHS_TOL && x <= upper + LHS_TOL,
            "var {} = {x} outside [{lower}, {upper}]",
            v.index()
        );
    }
    for (i, (terms, relation, rhs)) in lp.rows.iter().enumerate() {
        let lhs: f64 = terms.iter().map(|&(v, c)| c * sol.value(v)).sum();
        let ok = match relation {
            Relation::Le => lhs <= rhs + LHS_TOL,
            Relation::Ge => lhs >= rhs - LHS_TOL,
            Relation::Eq => (lhs - rhs).abs() <= LHS_TOL,
        };
        prop_assert!(ok, "row {i}: lhs {lhs} violates {relation:?} {rhs}");
    }
    Ok(())
}

struct RandomIp {
    problem: Problem,
    vars: Vec<VarId>,
    rows: Vec<(Vec<f64>, f64)>,
    profits: Vec<f64>,
}

/// A small 0/1 maximization with non-negative knapsack-style rows, so
/// the all-zeros point is always feasible and enumeration is the exact
/// oracle.
fn random_ip(seed: u64) -> RandomIp {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let n = rng.random_range(2..=6usize);
    let m = rng.random_range(1..=4usize);
    let mut problem = Problem::new(Sense::Maximize);
    let profits: Vec<f64> = (0..n).map(|_| grid(&mut rng, 0, 16)).collect();
    let vars: Vec<VarId> = profits
        .iter()
        .enumerate()
        .map(|(j, &c)| problem.add_binary(format!("b{j}"), c))
        .collect();
    let mut rows = Vec::new();
    for _ in 0..m {
        let coeffs: Vec<f64> = (0..n).map(|_| grid(&mut rng, 0, 8)).collect();
        let rhs = grid(&mut rng, 2, 14);
        problem.add_constraint(
            vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)),
            Relation::Le,
            rhs,
        );
        rows.push((coeffs, rhs));
    }
    RandomIp {
        problem,
        vars,
        rows,
        profits,
    }
}

/// Exhaustive 0/1 optimum of `ip`.
fn brute_force(ip: &RandomIp) -> f64 {
    let n = ip.vars.len();
    let mut best = f64::NEG_INFINITY;
    for mask in 0u32..(1 << n) {
        let picks = |j: usize| f64::from((mask >> j) & 1);
        let feasible = ip.rows.iter().all(|(coeffs, rhs)| {
            let lhs: f64 = coeffs.iter().enumerate().map(|(j, c)| c * picks(j)).sum();
            lhs <= rhs + LHS_TOL
        });
        if feasible {
            let value: f64 = ip
                .profits
                .iter()
                .enumerate()
                .map(|(j, c)| c * picks(j))
                .sum();
            best = best.max(value);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sparse and dense simplex agree on every random bounded LP, and
    /// the sparse point is feasible for the model it was handed.
    #[test]
    fn sparse_simplex_matches_dense_reference(seed in 0u64..100_000) {
        let lp = random_lp(seed);
        let sparse = lp.problem.solve_lp();
        let dense = lp.problem.solve_lp_dense();
        match (&sparse, &dense) {
            (Ok(s), Ok(d)) => {
                let tol = 1e-9 * s.objective.abs().max(1.0);
                prop_assert!(
                    (s.objective - d.objective).abs() <= tol,
                    "objective mismatch: sparse {} vs dense {}",
                    s.objective,
                    d.objective
                );
                assert_point_feasible(&lp, s)?;
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible))
            | (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
            _ => prop_assert!(
                false,
                "verdict mismatch: sparse {sparse:?} vs dense {dense:?}"
            ),
        }
    }

    /// Parallel branch and bound is bit-identical to sequential and
    /// both match exhaustive enumeration on random 0/1 programs.
    #[test]
    fn parallel_bnb_matches_sequential_and_bruteforce(seed in 0u64..100_000) {
        let ip = random_ip(seed);
        let sequential = ip.problem.solve_mip(&MipOptions::default()).unwrap();
        let parallel = ip
            .problem
            .solve_mip(&MipOptions { threads: 4, ..Default::default() })
            .unwrap();
        prop_assert_eq!(
            sequential.objective.to_bits(),
            parallel.objective.to_bits(),
            "objective differs across thread counts"
        );
        prop_assert_eq!(&sequential.values, &parallel.values);
        prop_assert_eq!(sequential.nodes_explored, parallel.nodes_explored);
        prop_assert_eq!(sequential.lp_iterations, parallel.lp_iterations);
        prop_assert_eq!(&sequential.incumbent_trace, &parallel.incumbent_trace);
        let best = brute_force(&ip);
        prop_assert!(
            (sequential.objective - best).abs() < 1e-6,
            "B&B {} vs brute force {best}",
            sequential.objective
        );
    }
}
