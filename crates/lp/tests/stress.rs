//! Heavier cross-checks of the LP/MILP solver against combinatorial
//! oracles: assignment problems vs permutation enumeration, set cover
//! vs subset enumeration, and LP duality spot checks.
#![allow(clippy::needless_range_loop)]

use ocd_lp::{MipOptions, Problem, Relation, Sense};
use rand::prelude::*;

#[test]
fn random_assignment_problems_match_permutation_bruteforce() {
    let mut rng = StdRng::seed_from_u64(404);
    for trial in 0..20 {
        let n = rng.random_range(2..5usize);
        let costs: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| f64::from(rng.random_range(0..20u32)))
                    .collect()
            })
            .collect();
        let mut p = Problem::new(Sense::Minimize);
        let mut x = Vec::new();
        for (i, row) in costs.iter().enumerate() {
            x.push(
                row.iter()
                    .enumerate()
                    .map(|(j, &c)| p.add_binary(format!("x{i}_{j}"), c))
                    .collect::<Vec<_>>(),
            );
        }
        for i in 0..n {
            p.add_constraint((0..n).map(|j| (x[i][j], 1.0)), Relation::Eq, 1.0);
            p.add_constraint((0..n).map(|j| (x[j][i], 1.0)), Relation::Eq, 1.0);
        }
        let sol = p.solve_mip(&MipOptions::default()).unwrap();
        let best = permutations(n)
            .into_iter()
            .map(|perm| (0..n).map(|i| costs[i][perm[i]]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        assert!(
            (sol.objective - best).abs() < 1e-6,
            "trial {trial}: MILP {} vs brute force {best}",
            sol.objective
        );
        // Solution must itself be a permutation.
        for i in 0..n {
            let row: i64 = (0..n).map(|j| sol.value_int(x[i][j])).sum();
            let col: i64 = (0..n).map(|j| sol.value_int(x[j][i])).sum();
            assert_eq!((row, col), (1, 1), "trial {trial}: not a permutation");
        }
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for pos in 0..=rest.len() {
            let mut perm = rest.clone();
            perm.insert(pos, n - 1);
            out.push(perm);
        }
    }
    out
}

#[test]
fn random_weighted_set_cover_matches_subset_bruteforce() {
    let mut rng = StdRng::seed_from_u64(777);
    for trial in 0..15 {
        let universe = rng.random_range(2..6usize);
        let num_sets = rng.random_range(2..7usize);
        let sets: Vec<(u32, Vec<usize>)> = (0..num_sets)
            .map(|_| {
                let cost = rng.random_range(1..9u32);
                let members: Vec<usize> = (0..universe).filter(|_| rng.random_bool(0.5)).collect();
                (cost, members)
            })
            .collect();
        // Ensure coverability.
        let coverable = (0..universe).all(|e| sets.iter().any(|(_, members)| members.contains(&e)));
        if !coverable {
            continue;
        }
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = sets
            .iter()
            .enumerate()
            .map(|(i, (cost, _))| p.add_binary(format!("s{i}"), f64::from(*cost)))
            .collect();
        for e in 0..universe {
            let covering: Vec<_> = sets
                .iter()
                .enumerate()
                .filter(|(_, (_, m))| m.contains(&e))
                .map(|(i, _)| (vars[i], 1.0))
                .collect();
            p.add_constraint(covering, Relation::Ge, 1.0);
        }
        let sol = p.solve_mip(&MipOptions::default()).unwrap();
        let mut best = u32::MAX;
        for mask in 0u32..(1 << num_sets) {
            let covered = (0..universe).all(|e| {
                sets.iter()
                    .enumerate()
                    .any(|(i, (_, m))| mask & (1 << i) != 0 && m.contains(&e))
            });
            if covered {
                let cost: u32 = sets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, (c, _))| c)
                    .sum();
                best = best.min(cost);
            }
        }
        assert_eq!(
            sol.objective.round() as u32,
            best,
            "trial {trial}: MILP disagrees with brute force"
        );
    }
}

#[test]
fn weak_duality_on_random_primal_dual_pairs() {
    // For max{c'x : Ax ≤ b, x ≥ 0} and min{b'y : A'y ≥ c, y ≥ 0}:
    // solve both with the simplex and check strong duality (equal
    // optima) on feasible bounded pairs.
    let mut rng = StdRng::seed_from_u64(31);
    let mut checked = 0;
    let mut attempts = 0;
    while checked < 10 && attempts < 200 {
        attempts += 1;
        let n = rng.random_range(2..4usize);
        let m = rng.random_range(2..4usize);
        let a: Vec<Vec<f64>> = (0..m)
            .map(|_| {
                (0..n)
                    .map(|_| f64::from(rng.random_range(1..5u32)))
                    .collect()
            })
            .collect();
        let b: Vec<f64> = (0..m)
            .map(|_| f64::from(rng.random_range(2..10u32)))
            .collect();
        let c: Vec<f64> = (0..n)
            .map(|_| f64::from(rng.random_range(1..6u32)))
            .collect();

        let mut primal = Problem::new(Sense::Maximize);
        let xs: Vec<_> = c
            .iter()
            .enumerate()
            .map(|(j, &cj)| primal.add_continuous(format!("x{j}"), 0.0, f64::INFINITY, cj))
            .collect();
        for i in 0..m {
            primal.add_constraint(
                xs.iter().copied().zip(a[i].iter().copied()),
                Relation::Le,
                b[i],
            );
        }
        let mut dual = Problem::new(Sense::Minimize);
        let ys: Vec<_> = b
            .iter()
            .enumerate()
            .map(|(i, &bi)| dual.add_continuous(format!("y{i}"), 0.0, f64::INFINITY, bi))
            .collect();
        for j in 0..n {
            dual.add_constraint(
                ys.iter().copied().zip((0..m).map(|i| a[i][j])),
                Relation::Ge,
                c[j],
            );
        }
        let (Ok(p), Ok(d)) = (primal.solve_lp(), dual.solve_lp()) else {
            continue;
        };
        checked += 1;
        assert!(
            (p.objective - d.objective).abs() < 1e-5,
            "strong duality violated: primal {} vs dual {}",
            p.objective,
            d.objective
        );
    }
    assert!(
        checked >= 10,
        "too few feasible primal/dual pairs generated"
    );
}

#[test]
fn moderately_large_lp_terminates_accurately() {
    // A 40-var, 60-row random ≤-LP with box bounds: verify feasibility
    // of the returned point and optimality via a perturbation probe.
    let mut rng = StdRng::seed_from_u64(88);
    let n = 40;
    let m = 60;
    let mut p = Problem::new(Sense::Maximize);
    let obj: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..5.0)).collect();
    let vars: Vec<_> = obj
        .iter()
        .enumerate()
        .map(|(j, &c)| p.add_continuous(format!("x{j}"), 0.0, 3.0, c))
        .collect();
    let mut rows = Vec::new();
    for _ in 0..m {
        let coeffs: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..2.0)).collect();
        let rhs = rng.random_range(5.0..40.0);
        p.add_constraint(
            vars.iter().copied().zip(coeffs.iter().copied()),
            Relation::Le,
            rhs,
        );
        rows.push((coeffs, rhs));
    }
    let sol = p.solve_lp().unwrap();
    for (coeffs, rhs) in &rows {
        let lhs: f64 = coeffs.iter().zip(&sol.values).map(|(a, x)| a * x).sum();
        assert!(lhs <= rhs + 1e-6);
    }
    for x in &sol.values {
        assert!((-1e-9..=3.0 + 1e-9).contains(x));
    }
    // Optimality probe: no single-coordinate move within bounds and
    // slacks should improve the objective (first-order check).
    for j in 0..n {
        if obj[j] <= 0.0 {
            continue;
        }
        if sol.values[j] >= 3.0 - 1e-7 {
            continue; // at its bound, fine
        }
        // Some constraint must be tight in this coordinate's direction.
        let blocked = rows.iter().any(|(coeffs, rhs)| {
            let lhs: f64 = coeffs.iter().zip(&sol.values).map(|(a, x)| a * x).sum();
            coeffs[j] > 1e-9 && lhs >= rhs - 1e-6
        });
        assert!(
            blocked,
            "variable {j} with positive reduced gradient is not blocked — not optimal"
        );
    }
}
