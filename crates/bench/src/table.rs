//! Aligned-table and CSV output for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple rectangular results table.
///
/// # Examples
///
/// ```
/// let mut t = ocd_bench::table::Table::new(["n", "moves"]);
/// t.row(["20", "11.0"]);
/// let rendered = t.render();
/// assert!(rendered.contains("n"));
/// assert!(rendered.contains("11.0"));
/// assert_eq!(t.to_csv(), "n,moves\n20,11.0\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        Table {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns (two-space gutters, header rule).
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.columns, &mut out);
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Serializes as CSV with minimal RFC-4180 quoting: a cell
    /// containing a comma, double quote, or line break is wrapped in
    /// double quotes (embedded quotes doubled); all other cells are
    /// emitted verbatim. Previously such cells were joined unquoted,
    /// silently corrupting the row structure.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains(['"', ',', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        for cells in std::iter::once(&self.columns).chain(&self.rows) {
            let quoted: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            let _ = writeln!(out, "{}", quoted.join(","));
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned columns share widths.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1", "2", "3"]);
        assert_eq!(t.to_csv(), "a,b,c\n1,2,3\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_special_cells() {
        // Regression: cells containing separators used to be joined
        // verbatim, silently corrupting the CSV row structure.
        let mut t = Table::new(["plain", "with,comma"]);
        t.row(["a,b", "c"]);
        t.row(["say \"hi\"", "line\nbreak"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.split("\r\n").collect();
        assert_eq!(lines.len(), 1, "no CRLF introduced");
        assert_eq!(
            csv,
            "plain,\"with,comma\"\n\"a,b\",c\n\"say \"\"hi\"\"\",\"line\nbreak\"\n"
        );
        // Unremarkable cells stay unquoted.
        let mut plain = Table::new(["a", "b"]);
        plain.row(["1", "2"]);
        assert_eq!(plain.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn ragged_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("ocd_bench_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(["x"]);
        t.row(["7"]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
