//! Theorem 4 demonstration: no c-competitive on-line algorithm exists
//! for FOCD.
//!
//! The proof sketch's adversarial family: two maximally separated
//! vertices where the sender holds many tokens the receiver does not
//! want. A prescient algorithm ships exactly the one wanted token along
//! the path (makespan = distance); a local-knowledge algorithm cannot
//! know which of the `m` tokens matters and, on unit-capacity links,
//! pays a factor that grows with `m`. The table reports the measured
//! competitive ratio per knowledge tier — watch it climb without bound
//! for the LocalOnly/PeerState strategies while the aggregate- and
//! global-knowledge tiers stay near 1 (they are *not* local in the
//! Theorem 4 sense, which is exactly the paper's point about knowledge).

use ocd_bench::args::ExpArgs;
use ocd_bench::table::Table;
use ocd_core::bounds::makespan_lower_bound;
use ocd_core::{Instance, Token, TokenSet};
use ocd_graph::generate::classic;
use ocd_heuristics::{simulate, SimConfig, StrategyKind};
use rand::prelude::*;

/// Path of `length + 1` vertices; the head holds `decoys + 1` tokens;
/// only the tail wants only the last token.
fn adversarial_instance(length: usize, decoys: usize) -> Instance {
    let g = classic::path(length + 1, 1, true);
    let m = decoys + 1;
    Instance::builder(g, m)
        .have_set(0, TokenSet::full(m))
        .want(length, [Token::new(m - 1)])
        .build()
        .expect("head holds every token")
}

fn main() {
    let args = ExpArgs::from_env();
    let (lengths, decoy_counts): (&[usize], &[usize]) = if args.quick {
        (&[4, 8], &[4, 16])
    } else {
        (&[4, 8, 16], &[4, 16, 64, 128])
    };
    let kinds = StrategyKind::all();
    let config = SimConfig {
        max_steps: 200_000,
        ..Default::default()
    };
    let mut table = Table::new([
        "path_len",
        "decoys",
        "opt_moves",
        "strategy",
        "tier",
        "moves",
        "ratio",
    ]);

    for &length in lengths {
        for &decoys in decoy_counts {
            let instance = adversarial_instance(length, decoys);
            // The offline optimum ships the one token straight down the
            // path; the admissible bound certifies it.
            let opt = length;
            assert_eq!(makespan_lower_bound(&instance), opt);
            for kind in kinds {
                let mut strategy = kind.build();
                let mut rng = StdRng::seed_from_u64(args.seed);
                let report = simulate(&instance, strategy.as_mut(), &config, &mut rng);
                assert!(report.success, "{kind} did not finish");
                let ratio = report.steps as f64 / opt as f64;
                table.row([
                    length.to_string(),
                    decoys.to_string(),
                    opt.to_string(),
                    kind.name().to_string(),
                    strategy.tier().to_string(),
                    report.steps.to_string(),
                    format!("{ratio:.2}"),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "Theorem 4 reading: local-knowledge tiers' ratios grow with the decoy count;\n\
         no constant c bounds them. Aggregate/global tiers sidestep the bound by\n\
         using non-local knowledge."
    );
    table
        .write_csv(format!("{}/table_competitive_gap.csv", args.out_dir))
        .expect("write csv");
}
