//! Competitive-ratio scoring against certified optima.
//!
//! Four sections, one CSV (`table_competitive_gap.csv`):
//!
//! 1. **theorem4** — the paper's Theorem 4 adversarial family: two
//!    maximally separated vertices where the sender holds many decoy
//!    tokens the receiver does not want. A prescient algorithm ships
//!    exactly the one wanted token along the path (makespan =
//!    distance); local-knowledge tiers pay a factor that grows with the
//!    decoy count, so no constant c bounds their competitive ratio.
//! 2. **broadcast-exact** — uplink-constrained broadcast on tiny
//!    complete overlays, scored against the *exact* optimum from
//!    [`ocd_heuristics::optimal::brute_force_uplink_makespan`] (which
//!    the `optimal` module certifies equal to the Mundinger–Weber–Weiss
//!    closed form at unit uplinks).
//! 3. **broadcast-scaled** — the same regime at `n` far beyond
//!    brute-force reach (peers ∈ {100, 1000}; `--full` adds 2000,
//!    `--quick` keeps only 100), scored against the closed form
//!    ([`mww_makespan`]) at unit uplinks and the certified lower bound
//!    ([`uplink_makespan_lower_bound`]) when the server uplink differs.
//! 4. **broadcast-ip** — heterogeneous-uplink broadcasts past the
//!    brute-force ceiling but within reach of the exact IP stack
//!    ([`makespan_via_ip`]): the oracle is a *certificate*, not a lower
//!    bound, so every heuristic ratio in this section — including the
//!    budget-aware per-neighbor-queue — is a true competitive ratio in
//!    a regime where no closed form exists. The unit-uplink member of
//!    the grid cross-checks the IP certificate against [`mww_makespan`].
//!
//! Every broadcast run goes through [`NodeCapacity<Ideal>`]: the five
//! paper heuristics are budget-oblivious and get clipped by admission
//! (a run that exceeds `64 × oracle` steps reports `dnf`), while the
//! budget-aware [`PerNeighborQueue`] plans within the uplinks — the
//! binary asserts it never loses to a paper heuristic at unit uplinks.
//!
//! Usage: `table_competitive_gap [--quick | --full] [--seed <u64>]
//! [--out <dir>]`

use ocd_bench::args::ExpArgs;
use ocd_bench::table::Table;
use ocd_core::bounds::makespan_lower_bound;
use ocd_core::{Instance, Token, TokenSet};
use ocd_graph::generate::classic;
use ocd_heuristics::optimal::{
    broadcast_instance, brute_force_uplink_makespan, mww_makespan, uplink_makespan_lower_bound,
};
use ocd_heuristics::{simulate, simulate_with, Ideal, NodeCapacity, SimConfig, StrategyKind};
use ocd_lp::MipOptions;
use ocd_solver::ip::{makespan_via_ip, MakespanOutcome};
use rand::prelude::*;

/// Path of `path_len + 1` vertices; the head holds `decoys + 1` tokens;
/// only the tail wants only the last token.
fn adversarial_instance(path_len: usize, decoys: usize) -> Instance {
    let g = classic::path(path_len + 1, 1, true);
    let m = decoys + 1;
    Instance::builder(g, m)
        .have_set(0, TokenSet::full(m))
        .want(path_len, [Token::new(m - 1)])
        .build()
        .expect("head holds every token")
}

const COLUMNS: [&str; 11] = [
    "section",
    "topology",
    "n",
    "parts",
    "server_up",
    "peer_up",
    "oracle",
    "opt_steps",
    "strategy",
    "steps",
    "ratio",
];

/// One broadcast cell: runs `kind` under `NodeCapacity<Ideal>` on the
/// MWW instance and returns `(steps, ratio)` as strings (`dnf`/`inf`
/// when the budget-oblivious strategy exceeds the step cap).
#[allow(clippy::too_many_arguments)]
fn broadcast_row(
    table: &mut Table,
    section: &str,
    oracle_name: &str,
    oracle: usize,
    parts: usize,
    peers: usize,
    server_up: u32,
    peer_up: u32,
    kind: StrategyKind,
    seed: u64,
) -> Option<usize> {
    let instance = broadcast_instance(parts, peers, server_up, peer_up);
    let budgets = instance.node_budgets().expect("budgeted").clone();
    let config = SimConfig {
        max_steps: 64 * oracle,
        ..Default::default()
    };
    let mut strategy = kind.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut medium = NodeCapacity::new(Ideal, budgets);
    let outcome = simulate_with(&instance, strategy.as_mut(), &mut medium, &config, &mut rng);
    let report = &outcome.report;
    let (steps, ratio) = if report.success {
        (
            report.steps.to_string(),
            format!("{:.3}", report.steps as f64 / oracle as f64),
        )
    } else {
        ("dnf".to_string(), "inf".to_string())
    };
    table.row([
        section.to_string(),
        "complete".to_string(),
        (peers + 1).to_string(),
        parts.to_string(),
        server_up.to_string(),
        peer_up.to_string(),
        oracle_name.to_string(),
        oracle.to_string(),
        kind.name().to_string(),
        steps,
        ratio,
    ]);
    report.success.then_some(report.steps)
}

fn main() {
    let args = ExpArgs::from_env();
    let mut table = Table::new(COLUMNS);

    // ---- section 1: Theorem 4 adversarial family -------------------
    let (path_lens, decoy_counts): (&[usize], &[usize]) = if args.quick {
        (&[4, 8], &[4, 16])
    } else {
        (&[4, 8, 16], &[4, 16, 64, 128])
    };
    let config = SimConfig {
        max_steps: 200_000,
        ..Default::default()
    };
    for &path_len in path_lens {
        for &decoys in decoy_counts {
            let instance = adversarial_instance(path_len, decoys);
            // The offline optimum ships the one token straight down the
            // path; the admissible bound certifies it.
            let opt = path_len;
            assert_eq!(makespan_lower_bound(&instance), opt);
            for kind in StrategyKind::all() {
                let mut strategy = kind.build();
                let mut rng = StdRng::seed_from_u64(args.seed);
                let report = simulate(&instance, strategy.as_mut(), &config, &mut rng);
                assert!(report.success, "{kind} did not finish");
                table.row([
                    "theorem4".to_string(),
                    "path".to_string(),
                    (path_len + 1).to_string(),
                    (decoys + 1).to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "path-distance".to_string(),
                    opt.to_string(),
                    kind.name().to_string(),
                    report.steps.to_string(),
                    format!("{:.3}", report.steps as f64 / opt as f64),
                ]);
            }
        }
    }

    // ---- section 2: brute-force-certified tiny broadcasts ----------
    let exact_grid: &[(usize, usize, u32, u32)] = if args.quick {
        &[(2, 3, 1, 1), (2, 3, 2, 1)]
    } else {
        &[(2, 3, 1, 1), (3, 4, 1, 1), (2, 3, 2, 1), (3, 4, 2, 1)]
    };
    for &(parts, peers, server_up, peer_up) in exact_grid {
        let exact = brute_force_uplink_makespan(parts, peers, server_up, peer_up);
        if server_up == 1 && peer_up == 1 {
            assert_eq!(exact, mww_makespan(parts, peers), "closed form certified");
        }
        let mut pnq_steps = None;
        let mut best_paper = usize::MAX;
        for kind in StrategyKind::all() {
            let steps = broadcast_row(
                &mut table,
                "broadcast-exact",
                "brute-force",
                exact,
                parts,
                peers,
                server_up,
                peer_up,
                kind,
                args.seed,
            );
            if kind == StrategyKind::PerNeighborQueue {
                pnq_steps = steps;
            } else if StrategyKind::paper_five().contains(&kind) {
                best_paper = best_paper.min(steps.unwrap_or(usize::MAX));
            }
        }
        let pnq = pnq_steps.expect("per-neighbor-queue always completes");
        assert!(
            pnq <= best_paper,
            "per-neighbor-queue ({pnq}) lost to a paper heuristic ({best_paper})"
        );
    }

    // ---- section 3: scaled closed-form ratios ----------------------
    // Uncoordinated tiers need ~n steps on budgeted broadcasts (visible
    // in the n = 101 rows) and a step over a complete overlay touches
    // all n^2 arcs, so at n = 10^3+ only the coordinated tiers — which
    // track the oracle within ~2x — stay within sane wall time.
    let mut scaled: Vec<(usize, usize, u32, u32, Vec<StrategyKind>)> = Vec::new();
    let everyone: Vec<StrategyKind> = StrategyKind::all().to_vec();
    let big: Vec<StrategyKind> = vec![
        StrategyKind::Global,
        StrategyKind::GatherThenPlan,
        StrategyKind::PerNeighborQueue,
    ];
    scaled.push((1, 100, 1, 1, everyone.clone()));
    scaled.push((8, 100, 1, 1, everyone.clone()));
    scaled.push((8, 100, 4, 1, everyone));
    if !args.quick {
        scaled.push((1, 1000, 1, 1, big.clone()));
        scaled.push((8, 1000, 1, 1, big.clone()));
        scaled.push((8, 1000, 4, 1, big.clone()));
    }
    if args.full {
        scaled.push((8, 2000, 1, 1, big));
    }
    for (parts, peers, server_up, peer_up, kinds) in scaled {
        let unit = server_up == 1 && peer_up == 1;
        let (oracle_name, oracle) = if unit {
            ("closed-form", mww_makespan(parts, peers))
        } else {
            (
                "lower-bound",
                uplink_makespan_lower_bound(parts, peers, server_up, peer_up),
            )
        };
        let mut pnq_steps = None;
        let mut best_paper = usize::MAX;
        for kind in kinds {
            let steps = broadcast_row(
                &mut table,
                "broadcast-scaled",
                oracle_name,
                oracle,
                parts,
                peers,
                server_up,
                peer_up,
                kind,
                args.seed,
            );
            if kind == StrategyKind::PerNeighborQueue {
                pnq_steps = steps;
            } else if StrategyKind::paper_five().contains(&kind) {
                best_paper = best_paper.min(steps.unwrap_or(usize::MAX));
            }
        }
        let pnq = pnq_steps.expect("per-neighbor-queue always completes");
        if unit {
            assert!(
                pnq <= best_paper,
                "per-neighbor-queue ({pnq}) lost to a paper heuristic ({best_paper}) \
                 at parts = {parts}, peers = {peers}"
            );
        }
    }

    // ---- section 4: IP-certified heterogeneous anchors -------------
    // Exact optima from the sparse-simplex / warm-started-B&B stack on
    // broadcasts the brute-force enumerator (M ≤ 8 tokens, N ≤ 5 peers)
    // cannot reach. The unit-uplink member cross-checks the IP
    // certificate against the MWW closed form; the heterogeneous
    // members have no closed form at all — the certificate is the only
    // exact anchor available.
    let ip_grid: &[(usize, usize, u32, u32)] = if args.quick {
        &[(2, 6, 2, 1)]
    } else {
        &[(2, 6, 1, 1), (2, 6, 2, 1), (4, 6, 2, 1)]
    };
    let ip_options = MipOptions {
        // Feasibility mode: each horizon only needs a witness schedule.
        absolute_gap: 1e12,
        node_limit: 30_000,
        ..MipOptions::default()
    };
    for &(parts, peers, server_up, peer_up) in ip_grid {
        let instance = broadcast_instance(parts, peers, server_up, peer_up);
        // Deterministic upper bound for the sweep from the budget-aware
        // policy (the same run later lands in this section's rows).
        let config = SimConfig {
            max_steps: 64 * (parts + peers),
            ..Default::default()
        };
        let mut planner = StrategyKind::PerNeighborQueue.build();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut medium =
            NodeCapacity::new(Ideal, instance.node_budgets().expect("budgeted").clone());
        let outcome = simulate_with(&instance, planner.as_mut(), &mut medium, &config, &mut rng);
        assert!(outcome.report.success, "per-neighbor-queue must finish");
        let MakespanOutcome::Certified(cert) =
            makespan_via_ip(&instance, outcome.report.steps, &ip_options).expect("simplex healthy")
        else {
            panic!(
                "broadcast-ip anchor failed to certify at parts = {parts}, peers = {peers}, \
                 uplinks = {server_up}/{peer_up}"
            );
        };
        let oracle = cert.makespan;
        if server_up == 1 && peer_up == 1 {
            assert_eq!(
                oracle,
                mww_makespan(parts, peers),
                "IP certificate must equal the MWW closed form at unit uplinks"
            );
        }
        let mut pnq_steps = None;
        let mut best_paper = usize::MAX;
        for kind in StrategyKind::all() {
            let steps = broadcast_row(
                &mut table,
                "broadcast-ip",
                "ip-certified",
                oracle,
                parts,
                peers,
                server_up,
                peer_up,
                kind,
                args.seed,
            );
            if kind == StrategyKind::PerNeighborQueue {
                pnq_steps = steps;
            } else if StrategyKind::paper_five().contains(&kind) {
                best_paper = best_paper.min(steps.unwrap_or(usize::MAX));
            }
        }
        let pnq = pnq_steps.expect("per-neighbor-queue always completes");
        if server_up == 1 && peer_up == 1 {
            assert!(
                pnq <= best_paper,
                "per-neighbor-queue ({pnq}) lost to a paper heuristic ({best_paper}) \
                 on the certified broadcast"
            );
        }
    }

    println!("{}", table.render());
    println!(
        "Reading: theorem4 ratios grow with the decoy count for local tiers (no\n\
         constant c bounds them); broadcast ratios are against certified optima —\n\
         the budget-aware per-neighbor-queue policy stays at 1.000 on unit uplinks\n\
         while budget-oblivious heuristics pay for every clipped move (dnf = did\n\
         not finish within 64x the oracle); broadcast-ip ratios are against IP\n\
         *certificates* in the heterogeneous-uplink regime, where neither a closed\n\
         form nor a brute-force optimum exists."
    );
    table
        .write_csv(format!("{}/table_competitive_gap.csv", args.out_dir))
        .expect("write csv");
}
