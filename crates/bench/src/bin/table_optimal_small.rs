//! §3.4 implicit table: exact optimal solutions for small graphs,
//! compared against every heuristic.
//!
//! "Using both a time-indexed Integer Program and a branch-and-bound
//! search strategy, we calculate optimal solutions for small graphs."
//! For a set of random small instances this binary reports the exact
//! minimum makespan (branch and bound), the exact minimum bandwidth
//! within a small horizon (the time-indexed IP), and each heuristic's
//! (moves, bandwidth, pruned bandwidth) — the gap columns of §5's
//! analysis, computed exactly.

use ocd_bench::args::ExpArgs;
use ocd_bench::runner::{derive_seeds, evaluate};
use ocd_bench::table::Table;
use ocd_core::{Instance, TokenSet};
use ocd_graph::DiGraph;
use ocd_heuristics::{SimConfig, StrategyKind};
use ocd_lp::MipOptions;
use ocd_solver::bnb::{solve_focd, BnbOptions};
use ocd_solver::ip::min_bandwidth_for_horizon;
use rand::prelude::*;

fn main() {
    let args = ExpArgs::from_env();
    let instances = if args.quick { 4 } else { 10 };
    let mut rng = StdRng::seed_from_u64(args.seed);
    let kinds = StrategyKind::paper_five();
    let mut table = Table::new([
        "instance",
        "n",
        "m",
        "opt_moves",
        "opt_bw",
        "strategy",
        "moves",
        "bandwidth",
        "pruned_bw",
    ]);

    let mut made = 0usize;
    while made < instances {
        let n = rng.random_range(3..5usize);
        let m = rng.random_range(1..4usize);
        let mut g = DiGraph::with_nodes(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.random_bool(0.6) {
                    g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                        .unwrap();
                }
            }
        }
        let mut builder = Instance::builder(g, m).have_set(0, TokenSet::full(m));
        let mut any = false;
        for v in 1..n {
            if rng.random_bool(0.8) {
                builder = builder.want_set(v, TokenSet::full(m));
                any = true;
            }
        }
        if !any {
            continue;
        }
        let instance = builder.build().unwrap();
        if !instance.is_satisfiable() {
            continue;
        }
        let Ok(exact_time) = solve_focd(&instance, &BnbOptions::default()) else {
            continue;
        };
        // Bandwidth optimum gets a little slack in the horizon: the
        // cheapest schedule may be slower than the fastest one.
        let horizon = (exact_time.makespan + 3).min(8);
        let exact_bw = min_bandwidth_for_horizon(&instance, horizon, &MipOptions::default())
            .expect("mip ok")
            .expect("feasible within horizon")
            .bandwidth;

        let seeds = derive_seeds(args.seed ^ made as u64, 3);
        let stats = evaluate(&instance, &kinds, &seeds, &SimConfig::default());
        for s in &stats {
            table.row([
                made.to_string(),
                instance.num_vertices().to_string(),
                instance.num_tokens().to_string(),
                exact_time.makespan.to_string(),
                exact_bw.to_string(),
                s.kind.name().to_string(),
                s.moves.to_string(),
                s.bandwidth.to_string(),
                s.pruned_bandwidth.to_string(),
            ]);
            // Exactness invariants the table must witness.
            assert!(
                s.moves.min >= exact_time.makespan as f64,
                "heuristic {} beat the exact makespan",
                s.kind
            );
            // No bandwidth assertion: `opt_bw` is horizon-constrained
            // (min bandwidth within opt_moves + 3 steps), and a slower
            // heuristic run may legitimately undercut it — that is the
            // Figure 1 trade-off at work.
        }
        made += 1;
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/table_optimal_small.csv", args.out_dir))
        .expect("write csv");
}
