//! Content encoding (paper §6): completion time of random flooding at
//! several redundancy ratios, against the uncoded baseline.
//!
//! With an idealized k-of-n code, the end-game changes character: an
//! uncoded receiver must chase its *specific* missing blocks, while a
//! coded receiver is happy with any k distinct coded tokens. The sweep
//! reports timesteps (and transfers) as the redundancy ratio `n/k`
//! grows — the first row (ratio 1.0) is exactly the uncoded problem.

use ocd_bench::args::ExpArgs;
use ocd_bench::stats::Summary;
use ocd_bench::table::Table;
use ocd_core::coding::{simulate_coded_random, CodedInstance, CodedSpec};
use ocd_graph::generate::paper_random;
use rand::prelude::*;

fn main() {
    let args = ExpArgs::from_env();
    let (n, k, runs) = if args.quick { (24, 16, 3) } else { (80, 64, 8) };
    let ratios: &[f64] = if args.quick {
        &[1.0, 1.5]
    } else {
        &[1.0, 1.125, 1.25, 1.5, 2.0]
    };

    let mut table = Table::new([
        "redundancy",
        "coded_tokens",
        "steps",
        "transfers",
        "duplicates",
        "steps_lb",
    ]);
    for &ratio in ratios {
        let coded = ((k as f64) * ratio).round() as usize;
        let mut steps = Vec::new();
        let mut transfers = Vec::new();
        let mut duplicates = Vec::new();
        let mut lbs = Vec::new();
        let mut unbounded = false;
        for r in 0..runs {
            let mut rng = StdRng::seed_from_u64(args.seed ^ (r as u64) << 9);
            let topology = paper_random(n, &mut rng);
            let instance = CodedInstance::single_source(topology, CodedSpec::new(k, coded), 0);
            let lb = instance.makespan_lower_bound();
            let report = simulate_coded_random(&instance, 100_000, &mut rng);
            assert!(report.success, "coded random must complete");
            match lb {
                Some(lb) => {
                    assert!(report.steps >= lb, "run beat its own lower bound");
                    lbs.push(lb as u64);
                }
                // A receiver with no finite bound can never complete,
                // contradicting the success assertion above — but keep
                // the rendering honest rather than trusting that.
                None => unbounded = true,
            }
            steps.push(report.steps as u64);
            transfers.push(report.transfers);
            duplicates.push(report.duplicate_deliveries);
        }
        table.row([
            format!("{ratio:.3}"),
            coded.to_string(),
            Summary::of_ints(&steps).to_string(),
            Summary::of_ints(&transfers).to_string(),
            Summary::of_ints(&duplicates).to_string(),
            if unbounded {
                "DNF".to_string()
            } else {
                Summary::of_ints(&lbs).to_string()
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "(ratio 1.000 is the uncoded baseline: receivers chase specific blocks;\n\
         higher ratios shorten the threshold end-game at the cost of carrying\n\
         more distinct tokens.)"
    );
    table
        .write_csv(format!("{}/table_coding.csv", args.out_dir))
        .expect("write csv");
}
