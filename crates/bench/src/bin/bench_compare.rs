//! The perf-trajectory gate as a standalone binary:
//! `bench_compare <old.json> <new.json> [--tolerance 0.15]`.
//!
//! Prints the per-bench delta table and exits nonzero when any bench
//! shared by both snapshots regressed in `mean_ns` by more than the
//! tolerance. CI runs this against the committed `BENCH_<n>.json`
//! snapshots; `ocd bench compare` is the same gate behind the main
//! CLI.

use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.15f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                let raw = args
                    .get(i + 1)
                    .ok_or("--tolerance requires a value (e.g. 0.15)")?;
                tolerance = raw
                    .parse()
                    .map_err(|_| format!("invalid tolerance `{raw}`"))?;
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: bench_compare <old.json> <new.json> [--tolerance 0.15]");
                return Ok(false);
            }
            other => {
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    let [old, new] = paths.as_slice() else {
        return Err("usage: bench_compare <old.json> <new.json> [--tolerance 0.15]".into());
    };
    let (table, regressed) = ocd_bench::compare::compare_files(old, new, tolerance)?;
    print!("{table}");
    Ok(regressed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_compare: {msg}");
            ExitCode::FAILURE
        }
    }
}
