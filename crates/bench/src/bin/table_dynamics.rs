//! Changing network conditions (paper §6): how the heuristics cope with
//! congestion, link outages, churn, and an adversary, compared to the
//! static network and to the §5.1 lower bounds computed on the static
//! topology (an optimistic "network oracle" reference).

use ocd_bench::args::ExpArgs;
use ocd_bench::stats::Summary;
use ocd_bench::table::Table;
use ocd_core::{bounds, ProvenanceTrace};
use ocd_graph::generate::paper_random;
use ocd_heuristics::dynamics::{
    AdversarialCuts, Churn, CrossTraffic, LinkOutages, NetworkDynamics, StaticNetwork,
};
use ocd_heuristics::{simulate_dynamic, SimConfig, StrategyKind};
use rand::prelude::*;

/// A named factory producing a fresh dynamics model per run.
type ConditionFactory = Box<dyn FnMut() -> Box<dyn NetworkDynamics>>;

fn conditions() -> Vec<(&'static str, ConditionFactory)> {
    vec![
        ("static", Box::new(|| Box::new(StaticNetwork))),
        (
            "cross-traffic-50%",
            Box::new(|| Box::new(CrossTraffic::new(0.5))),
        ),
        (
            "outages-10/50",
            Box::new(|| Box::new(LinkOutages::new(0.10, 0.50))),
        ),
        (
            "churn-5/30",
            Box::new(|| Box::new(Churn::new(0.05, 0.30, vec![0]))),
        ),
        // A rotating adversary (cooldown 2) slows distribution;
        // a persistent one permanently blocks the last needy vertex
        // whenever its budget covers that vertex's useful in-arcs.
        (
            "adversary-2-rotating",
            Box::new(|| Box::new(AdversarialCuts::with_cooldown(2, 2))),
        ),
        (
            "adversary-2-persistent",
            Box::new(|| Box::new(AdversarialCuts::new(2))),
        ),
    ]
}

/// The most frequent bottleneck arc across runs (ties to the
/// lexicographically smallest label), or `-` when no run had one.
fn modal_arc(labels: &[String]) -> String {
    let mut counts = std::collections::BTreeMap::new();
    for label in labels {
        *counts.entry(label.as_str()).or_insert(0u32) += 1;
    }
    counts
        .into_iter()
        .max_by(|(a, ca), (b, cb)| ca.cmp(cb).then(b.cmp(a)))
        .map_or_else(|| "-".to_string(), |(label, _)| label.to_string())
}

fn main() {
    let args = ExpArgs::from_env();
    let (n, tokens) = if args.quick { (24, 24) } else { (60, 64) };
    let runs = if args.quick { 2 } else { 5 };
    let kinds = [
        StrategyKind::Random,
        StrategyKind::Local,
        StrategyKind::Global,
    ];
    let config = SimConfig {
        max_steps: 5_000,
        ..Default::default()
    };

    let mut rng = StdRng::seed_from_u64(args.seed);
    let topology = paper_random(n, &mut rng);
    let instance = ocd_core::scenario::single_file(topology, tokens, 0);
    println!(
        "single file, n = {n}, m = {tokens}; static lower bounds: {} moves, {} bandwidth\n",
        bounds::makespan_lower_bound(&instance),
        bounds::bandwidth_lower_bound(&instance)
    );

    let mut table = Table::new([
        "condition",
        "strategy",
        "success",
        "moves",
        "bandwidth",
        "duplicate_deliveries",
        "crit_len",
        "crit_arc",
    ]);
    for (label, mut make) in conditions() {
        for kind in kinds {
            let mut moves = Vec::new();
            let mut bandwidth = Vec::new();
            let mut duplicates = Vec::new();
            let mut crit_len = Vec::new();
            let mut crit_arcs = Vec::new();
            let mut successes = 0u32;
            for r in 0..runs {
                let mut strategy = kind.build();
                let mut dynamics = make();
                let mut run_rng = StdRng::seed_from_u64(args.seed ^ (r as u64) << 7);
                let outcome = simulate_dynamic(
                    &instance,
                    strategy.as_mut(),
                    dynamics.as_mut(),
                    &config,
                    &mut run_rng,
                );
                // Re-validate against the recorded capacity trace.
                let replay = ocd_core::validate::replay_with_capacities(
                    &instance,
                    &outcome.report.schedule,
                    &outcome.capacity_trace,
                )
                .expect("dynamic schedule must validate");
                if outcome.report.success {
                    assert!(replay.is_successful());
                    successes += 1;
                    moves.push(outcome.report.steps as u64);
                    bandwidth.push(outcome.report.bandwidth);
                    duplicates.push(outcome.report.duplicate_deliveries);
                    // Post-hoc causal provenance: critical-path length
                    // and the arc carrying the most critical hops.
                    let analysis =
                        ProvenanceTrace::from_schedule(&instance, &outcome.report.schedule)
                            .analyze(&instance);
                    crit_len.push(analysis.crit_len() as u64);
                    if let Some(arc) = analysis.crit_arc() {
                        let e = instance.graph().edge(arc);
                        crit_arcs.push(format!("{}->{}", e.src.index(), e.dst.index()));
                    }
                }
            }
            table.row([
                label.to_string(),
                kind.name().to_string(),
                format!("{}/{}", successes, runs),
                Summary::of_ints(&moves).to_string(),
                Summary::of_ints(&bandwidth).to_string(),
                Summary::of_ints(&duplicates).to_string(),
                Summary::of_ints(&crit_len).to_string(),
                modal_arc(&crit_arcs),
            ]);
        }
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/table_dynamics.csv", args.out_dir))
        .expect("write csv");
}
