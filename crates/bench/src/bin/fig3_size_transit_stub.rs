//! Figure 3: moves and bandwidth as a function of graph size — single
//! source and single file to all receivers on transit-stub (GT-ITM
//! style) topologies.
//!
//! Identical sweep to Figure 2 but with hierarchical Internet-like
//! graphs; the paper reports the two topologies behave qualitatively the
//! same, which this binary lets you confirm.

use ocd_bench::args::ExpArgs;
use ocd_bench::runner::{bounds_of, derive_seeds, evaluate, figure_table, push_rows};
use ocd_core::scenario::single_file;
use ocd_graph::generate::{transit_stub, TransitStubConfig};
use ocd_heuristics::{SimConfig, StrategyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let (sizes, tokens): (&[usize], usize) = if args.quick {
        (&[30, 60], 50)
    } else {
        (&[20, 50, 100, 200, 400, 700, 1000], 200)
    };
    let kinds = StrategyKind::paper_five();
    let config = SimConfig::default();
    let mut table = figure_table("n");

    for &n in sizes {
        let graphs = if args.quick {
            1
        } else if n <= 200 {
            3
        } else {
            2
        };
        let repeats = if args.quick { 2 } else { 3 };
        let ts_config = TransitStubConfig::paper_sized(n);
        eprintln!(
            "n ≈ {n} (actual {}): {graphs} graphs × {repeats} repeats…",
            ts_config.total_nodes()
        );
        for gi in 0..graphs {
            let mut topo_rng = StdRng::seed_from_u64(args.seed ^ (n as u64) << 9 ^ gi);
            let topology = transit_stub(&ts_config, &mut topo_rng);
            let actual_n = topology.node_count();
            let instance = single_file(topology, tokens, 0);
            let seeds = derive_seeds(args.seed ^ (n as u64) << 21 ^ gi, repeats);
            let stats = evaluate(&instance, &kinds, &seeds, &config);
            let bounds = bounds_of(&instance);
            push_rows(&mut table, &actual_n.to_string(), &stats, &bounds);
        }
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/fig3_size_transit_stub.csv", args.out_dir))
        .expect("write csv");
}
