//! Figure 4: moves and bandwidth as a function of receiver density —
//! single source and file to a score-thresholded subset of receivers on
//! a random graph.
//!
//! Paper parameters (§5.2): 200 nodes, one 200-token file, each vertex
//! joins the want set iff its uniform random score falls below the
//! x-axis threshold. Expected shapes: the flooding heuristics are flat
//! in both metrics regardless of density; Random burns roughly 2× the
//! bandwidth of the smarter flooders; the Bandwidth heuristic is
//! slightly slower but needs far less bandwidth at low thresholds; and
//! the pruned flooding bandwidth is roughly optimal.

use ocd_bench::args::ExpArgs;
use ocd_bench::runner::{bounds_of, derive_seeds, evaluate, figure_table, push_rows};
use ocd_core::scenario::receiver_density;
use ocd_graph::generate::paper_random;
use ocd_heuristics::{SimConfig, StrategyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let (n, tokens, thresholds): (usize, usize, Vec<f64>) = if args.quick {
        (50, 40, vec![0.2, 0.6, 1.0])
    } else {
        (200, 200, (1..=10).map(|i| f64::from(i) / 10.0).collect())
    };
    let kinds = StrategyKind::paper_five();
    let config = SimConfig::default();
    let mut table = figure_table("threshold");

    let graphs = if args.quick { 1 } else { 2 };
    let repeats = if args.quick { 2 } else { 3 };
    for &threshold in &thresholds {
        eprintln!("threshold = {threshold}…");
        for gi in 0..graphs {
            let mut topo_rng = StdRng::seed_from_u64(args.seed ^ gi << 4);
            let topology = paper_random(n, &mut topo_rng);
            let mut want_rng =
                StdRng::seed_from_u64(args.seed ^ (threshold * 1000.0) as u64 ^ gi << 12);
            let instance = receiver_density(topology, tokens, 0, threshold, &mut want_rng);
            let seeds = derive_seeds(args.seed ^ (threshold * 77.0) as u64 ^ gi, repeats);
            let stats = evaluate(&instance, &kinds, &seeds, &config);
            let bounds = bounds_of(&instance);
            push_rows(&mut table, &format!("{threshold:.1}"), &stats, &bounds);
        }
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/fig4_receiver_density.csv", args.out_dir))
        .expect("write csv");
}
