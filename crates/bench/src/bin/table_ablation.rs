//! Ablation study of the design choices inside the paper's heuristics
//! (the knobs DESIGN.md calls out):
//!
//! - **Local** with vs without request subdivision — quantifies the
//!   "two peers send the same rare block" waste the paper designed
//!   subdivision to prevent;
//! - **Bandwidth** with per-needy-vertex relays vs a single relay per
//!   token — parallel progress toward demand clusters vs strictly
//!   minimal caution;
//! - **Global** with vs without rarity-aware ranking — how much of the
//!   coordinated heuristic's edge is rarity versus pure same-step
//!   deduplication.
//!
//! Run on a receiver-density instance (sparse demand, where waste is
//! visible) and a multi-file instance (directional demand).

use ocd_bench::args::ExpArgs;
use ocd_bench::stats::Summary;
use ocd_bench::table::Table;
use ocd_core::{prune, Instance};
use ocd_graph::generate::paper_random;
use ocd_heuristics::{simulate, BandwidthCautious, GlobalGreedy, LocalRarest, SimConfig, Strategy};
use rand::prelude::*;

fn variants() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(LocalRarest::new()),
        Box::new(LocalRarest::without_subdivision()),
        Box::new(BandwidthCautious::new()),
        Box::new(BandwidthCautious::with_single_relay()),
        Box::new(GlobalGreedy::new()),
        Box::new(GlobalGreedy::without_rarity()),
    ]
}

fn run_block(table: &mut Table, scenario: &str, instance: &Instance, seeds: &[u64]) {
    for mut strategy in variants() {
        let mut moves = Vec::new();
        let mut bandwidth = Vec::new();
        let mut pruned_bw = Vec::new();
        for &seed in seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let report = simulate(instance, strategy.as_mut(), &SimConfig::default(), &mut rng);
            assert!(report.success, "{} failed", strategy.name());
            moves.push(report.steps as u64);
            bandwidth.push(report.bandwidth);
            let (p, _) = prune::prune(instance, &report.schedule);
            pruned_bw.push(p.bandwidth());
        }
        table.row([
            scenario.to_string(),
            strategy.name().to_string(),
            Summary::of_ints(&moves).to_string(),
            Summary::of_ints(&bandwidth).to_string(),
            Summary::of_ints(&pruned_bw).to_string(),
        ]);
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let (n, tokens, files) = if args.quick {
        (40, 48, 8)
    } else {
        (120, 192, 16)
    };
    let seeds: Vec<u64> = (0..if args.quick { 2 } else { 5 })
        .map(|i| args.seed.wrapping_add(i))
        .collect();
    let mut table = Table::new(["scenario", "variant", "moves", "bandwidth", "pruned_bw"]);

    let mut rng = StdRng::seed_from_u64(args.seed);
    let topo1 = paper_random(n, &mut rng);
    let sparse = ocd_core::scenario::receiver_density(topo1, tokens, 0, 0.3, &mut rng);
    run_block(&mut table, "density-0.3", &sparse, &seeds);

    let topo2 = paper_random(n, &mut rng);
    let partitioned = ocd_core::scenario::multi_file(topo2, tokens, files, 0);
    run_block(&mut table, &format!("{files}-files"), &partitioned, &seeds);

    println!("{}", table.render());
    table
        .write_csv(format!("{}/table_ablation.csv", args.out_dir))
        .expect("write csv");
}
