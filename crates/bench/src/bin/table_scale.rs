//! Engine scalability table: the paper's heuristics on overlays far
//! beyond the evaluation sizes of §5.2.
//!
//! Sweeps `G(n, p)` (geometric-skip sampled, `p = 2 ln n / n`) and
//! GT-ITM-style transit-stub topologies at `n ∈ {10^4, 10^5}` (plus
//! `10^6` under `--full`, just `10^4` under `--quick`), running the
//! sharded per-vertex restatements of the Random, Local, and TreeStripe
//! heuristics to completion and reporting planning throughput
//! (tokens/sec) alongside the CSR graph's memory footprint
//! (bytes/vertex).
//!
//! Sharded planning is deterministic in the shard count — `--shards N`
//! produces the byte-identical schedule of `--shards 1` — and
//! `--emit-schedules <dir>` writes each run's schedule as JSON so CI can
//! verify exactly that by comparing the artifacts of two runs.
//!
//! Usage: `table_scale [--quick | --full] [--seed <u64>] [--out <dir>]
//! [--shards <n>] [--tokens <m>] [--emit-schedules <dir>]`

use ocd_bench::table::Table;
use ocd_core::scenario::single_file;
use ocd_core::Instance;
use ocd_graph::generate::{gnp, transit_stub, GnpConfig, TransitStubConfig};
use ocd_graph::DiGraph;
use ocd_heuristics::{
    simulate, Sharded, ShardedLocal, ShardedRandom, ShardedTreeStripe, SimConfig, Strategy,
};
use rand::prelude::*;

struct Args {
    quick: bool,
    full: bool,
    seed: u64,
    out_dir: String,
    shards: usize,
    tokens: usize,
    emit_schedules: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        quick: false,
        full: false,
        seed: 2005,
        out_dir: "results".to_string(),
        shards: std::thread::available_parallelism().map_or(1, |c| c.get()),
        tokens: 64,
        emit_schedules: None,
    };
    let mut iter = std::env::args().skip(1);
    let value = |iter: &mut dyn Iterator<Item = String>, flag: &str| {
        iter.next().ok_or(format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => out.quick = true,
            "--full" => out.full = true,
            "--seed" => {
                let v = value(&mut iter, "--seed")?;
                out.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
            }
            "--out" => out.out_dir = value(&mut iter, "--out")?,
            "--shards" => {
                let v = value(&mut iter, "--shards")?;
                out.shards = v.parse().map_err(|_| format!("invalid shards `{v}`"))?;
                if out.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--tokens" => {
                let v = value(&mut iter, "--tokens")?;
                out.tokens = v.parse().map_err(|_| format!("invalid tokens `{v}`"))?;
                if out.tokens == 0 {
                    return Err("--tokens must be at least 1".to_string());
                }
            }
            "--emit-schedules" => out.emit_schedules = Some(value(&mut iter, "--emit-schedules")?),
            "--help" | "-h" => {
                return Err(
                    "usage: [--quick | --full] [--seed <u64>] [--out <dir>] [--shards <n>] \
                     [--tokens <m>] [--emit-schedules <dir>]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(out)
}

fn strategies(shards: usize) -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(Sharded::new(ShardedRandom::new(), shards)),
        Box::new(Sharded::new(ShardedLocal::new(), shards)),
        Box::new(Sharded::new(ShardedTreeStripe::new(4), shards)),
    ]
}

fn build_topology(kind: &str, n: usize, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        "gnp" => gnp(&GnpConfig::fast(n), &mut rng),
        "transit-stub" => transit_stub(&TransitStubConfig::paper_sized(n), &mut rng),
        other => unreachable!("unknown topology kind {other}"),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let sizes: &[usize] = match (args.quick, args.full) {
        (true, _) => &[10_000],
        (false, false) => &[10_000, 100_000],
        (false, true) => &[10_000, 100_000, 1_000_000],
    };
    let m = args.tokens;
    println!(
        "scale sweep: m = {m} tokens, shards = {}, sizes = {sizes:?}\n",
        args.shards
    );
    let mut table = Table::new([
        "topology",
        "strategy",
        "n",
        "arcs",
        "steps",
        "moves",
        "secs",
        "tokens_per_sec",
        "bytes_per_vertex",
    ]);

    for kind in ["gnp", "transit-stub"] {
        for &n in sizes {
            let build_start = std::time::Instant::now();
            let g = build_topology(kind, n, args.seed ^ n as u64);
            let actual_n = g.node_count();
            let arcs = g.edge_count();
            let bytes_per_vertex = g.memory_bytes() as f64 / actual_n as f64;
            println!(
                "{kind} n = {actual_n}: {arcs} arcs, built in {:.2}s",
                build_start.elapsed().as_secs_f64()
            );
            let instance: Instance = single_file(g, m, 0);
            for mut strategy in strategies(args.shards) {
                let mut rng = StdRng::seed_from_u64(args.seed);
                let report = simulate(
                    &instance,
                    strategy.as_mut(),
                    &SimConfig::default(),
                    &mut rng,
                );
                assert!(
                    report.success,
                    "{} failed on {kind} n = {actual_n}",
                    strategy.name()
                );
                let secs = report.wall_nanos as f64 / 1e9;
                println!(
                    "  {:<20} {} steps, {} moves, {secs:.2}s",
                    strategy.name(),
                    report.steps,
                    report.bandwidth
                );
                if let Some(dir) = &args.emit_schedules {
                    std::fs::create_dir_all(dir).expect("create schedule dir");
                    let path = format!("{dir}/{kind}_{}_n{actual_n}.json", strategy.name());
                    let json = serde_json::to_string(&report.schedule).expect("serialize schedule");
                    std::fs::write(&path, json).expect("write schedule artifact");
                }
                table.row([
                    kind.to_string(),
                    strategy.name().to_string(),
                    actual_n.to_string(),
                    arcs.to_string(),
                    report.steps.to_string(),
                    report.bandwidth.to_string(),
                    format!("{secs:.3}"),
                    format!("{:.0}", report.bandwidth as f64 / secs),
                    format!("{bytes_per_vertex:.1}"),
                ]);
            }
        }
    }
    println!("\n{}", table.render());
    table
        .write_csv(format!("{}/table_scale.csv", args.out_dir))
        .expect("write csv");
}
