//! The replication-vs-coding cost frontier (paper §6, made real).
//!
//! Both contenders run on the *same* asynchronous swarm runtime and the
//! same degraded links: the uncoded Random swarm moves named tokens and
//! must chase each loss with a targeted, timeout-driven retransmission;
//! the coded swarm ([`ocd_net::run_coded_swarm`]) moves random GF(2^8)
//! combinations, so any innovative packet repairs any loss. The sweep
//! maps generation size `k` × proactive redundancy × per-arc loss rate
//! and reports makespan (ticks), wire bytes (coded packets pay a
//! `k`-byte coefficient header on every 256-byte payload), and waste
//! (redundant/duplicate deliveries). The `coding_wins` column marks the
//! regimes where RLNC beats replication on makespan AND bytes at once:
//! lossless links favor replication (the header is pure overhead,
//! precise bitmap beliefs avoid duplicates), long lossy links favor
//! coding (no per-token end-game, loss costs one retransmit of any
//! combination).
//!
//! Links are long and jittery (latency 3, jitter 3) with a lightly
//! lossy control plane — the regime where belief staleness actually
//! bites — and both runtimes face identical settings. The topology is a
//! grid mesh (every interior vertex has several in-arcs), which is
//! exactly where replication hurts: two senders pushing concurrently to
//! the same receiver can pick the *same* missing token (a birthday
//! collision the bitmap beliefs are too stale to prevent), while two
//! random GF(2^8) combinations are almost surely jointly innovative.

use ocd_bench::args::ExpArgs;
use ocd_bench::stats::Summary;
use ocd_bench::table::Table;
use ocd_core::rlnc::RlncInstance;
use ocd_core::scenario::single_file;
use ocd_graph::generate::classic;
use ocd_net::{run_coded_swarm, run_swarm, FaultPlan, NetConfig, NetPolicy};
use rand::prelude::*;

const PAYLOAD: usize = 256;

fn main() {
    let args = ExpArgs::from_env();
    let (rows, cols, runs) = if args.quick { (2, 3, 2) } else { (3, 3, 5) };
    let gens: &[usize] = if args.quick { &[8] } else { &[8, 16] };
    let redundancies: &[f64] = if args.quick { &[1.0] } else { &[1.0, 1.5] };
    let losses: &[f64] = if args.quick {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.25, 0.5]
    };

    let mut table = Table::new([
        "k",
        "redundancy",
        "loss",
        "ticks_coded",
        "ticks_uncoded",
        "bytes_coded",
        "bytes_uncoded",
        "redundant_coded",
        "duplicate_uncoded",
        "coding_wins",
    ]);
    let mut frontier_hit = false;
    for &k in gens {
        for &redundancy in redundancies {
            for &loss in losses {
                let config = NetConfig {
                    policy: NetPolicy::Random,
                    latency: 3,
                    jitter: 3,
                    loss,
                    control_loss: loss.min(0.3),
                    ..NetConfig::default()
                };
                let mut ct = Vec::new();
                let mut cb = Vec::new();
                let mut cr = Vec::new();
                let mut ut = Vec::new();
                let mut ub = Vec::new();
                let mut ud = Vec::new();
                for r in 0..runs {
                    let seed = args.seed ^ (r as u64) << 9;
                    let g = classic::grid(rows, cols, 2);

                    let coded_inst = RlncInstance::single_source(g.clone(), k, PAYLOAD, 0);
                    let mut rng = StdRng::seed_from_u64(seed);
                    let coded = run_coded_swarm(&coded_inst, &config, redundancy, &mut rng);
                    assert!(
                        coded.success && coded.decode_ok,
                        "coded swarm must complete and decode (k={k} loss={loss} run={r})"
                    );
                    ct.push(coded.ticks);
                    cb.push(coded.bytes_sent);
                    cr.push(coded.redundant_deliveries);

                    let uncoded_inst = single_file(g, k, 0);
                    let mut rng = StdRng::seed_from_u64(seed);
                    let uncoded = run_swarm(&uncoded_inst, &config, &FaultPlan::none(), &mut rng);
                    assert!(
                        uncoded.success,
                        "uncoded swarm must complete (k={k} loss={loss} run={r})"
                    );
                    ut.push(uncoded.ticks);
                    ub.push(uncoded.bandwidth() * PAYLOAD as u64);
                    ud.push(uncoded.duplicate_deliveries);
                }
                let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
                let wins = mean(&ct) < mean(&ut) && mean(&cb) < mean(&ub);
                frontier_hit |= wins;
                table.row([
                    k.to_string(),
                    format!("{redundancy:.2}"),
                    format!("{loss:.2}"),
                    Summary::of_ints(&ct).to_string(),
                    Summary::of_ints(&ut).to_string(),
                    Summary::of_ints(&cb).to_string(),
                    Summary::of_ints(&ub).to_string(),
                    Summary::of_ints(&cr).to_string(),
                    Summary::of_ints(&ud).to_string(),
                    if wins { "yes" } else { "no" }.to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "(coding_wins = RLNC beats uncoded Random on BOTH mean makespan and mean\n\
         wire bytes; coded packets carry a k-byte GF(2^8) coefficient header on\n\
         every {PAYLOAD}-byte payload. Identical link model on both sides:\n\
         latency 3, jitter 3, control loss min(loss, 0.3).)"
    );
    if !args.quick {
        assert!(
            frontier_hit,
            "the frontier must contain at least one regime where coding wins \
             on both makespan and bytes"
        );
    }
    table
        .write_csv(format!("{}/table_coding_frontier.csv", args.out_dir))
        .expect("write csv");
}
