//! Figure 1: minimizing time and minimizing bandwidth are at odds.
//!
//! Recomputes, with the exact solvers, the makespan/bandwidth Pareto
//! frontier of the Figure 1 instance and checks it against the paper's
//! caption: "The minimum time schedule takes 2 timesteps and uses 6
//! units of bandwidth; a minimum bandwidth schedule uses 4 units of
//! bandwidth but takes 3 timesteps."

use ocd_bench::args::ExpArgs;
use ocd_bench::table::Table;
use ocd_core::scenario::figure_one;
use ocd_lp::MipOptions;
use ocd_solver::bnb::{solve_focd, BnbOptions};
use ocd_solver::ip::{min_bandwidth_for_horizon, pareto_frontier};

fn main() {
    let args = ExpArgs::from_env();
    let instance = figure_one();
    println!("Figure 1 instance: {:?}\n", instance.stats());

    let exact_time = solve_focd(&instance, &BnbOptions::default()).expect("satisfiable");
    println!(
        "branch-and-bound minimum makespan: {} steps (schedule bandwidth {})",
        exact_time.makespan,
        exact_time.schedule.bandwidth()
    );
    let at_min_time =
        min_bandwidth_for_horizon(&instance, exact_time.makespan, &MipOptions::default())
            .expect("mip ok")
            .expect("feasible at the exact minimum");
    println!(
        "IP minimum bandwidth at {} steps: {}",
        exact_time.makespan, at_min_time.bandwidth
    );

    let frontier = pareto_frontier(&instance, 1..=5, &MipOptions::default()).expect("mip ok");
    let mut table = Table::new(["timesteps", "min_bandwidth"]);
    for (tau, bw) in &frontier {
        table.row([tau.to_string(), bw.to_string()]);
    }
    println!("\n{}", table.render());
    table
        .write_csv(format!("{}/fig1_tradeoff.csv", args.out_dir))
        .expect("write csv");

    let min_time = frontier.first().copied();
    let min_bw_point = frontier.iter().copied().min_by_key(|&(t, b)| (b, t));
    println!("paper caption:   min-time (2 steps, 6 bw); min-bandwidth (3 steps, 4 bw)");
    println!(
        "measured:        min-time ({} steps, {} bw); min-bandwidth ({} steps, {} bw)",
        min_time.map_or(0, |p| p.0),
        min_time.map_or(0, |p| p.1),
        min_bw_point.map_or(0, |p| p.0),
        min_bw_point.map_or(0, |p| p.1),
    );
}
