//! Exact anchors at n ≈ 50–100: certified optimal makespans from the
//! sparse-simplex / warm-started-B&B stack on `G(n, p)` broadcasts.
//!
//! For each size the binary generates a connected `G(n, 2 ln n / n)`
//! overlay with unit arc capacities, broadcasts 2 parts from vertex 0,
//! and solves the exact makespan two ways per row: unconstrained
//! ("free") and under unit uplink budgets ("uplink-1", the
//! Mundinger–Weber–Weiss regime on a sparse overlay, where no closed
//! form exists). The exact path is [`makespan_via_ip`]: sweep horizons
//! upward from the combinatorial lower bound, certify each infeasible
//! horizon (LP-relaxation prefilter, then MILP), stop at the first
//! feasible one. A deterministic heuristic run bounds the sweep from
//! above; if the MILP exhausts its node budget the row degrades to a
//! `gap[lo,hi]` status instead of a certificate.
//!
//! The `lp_ms` / `dense_lp_ms` columns time the LP relaxation of the
//! final model through the sparse revised simplex and the retained
//! dense tableau: the dense path is only attempted while its working
//! tableau stays under [`DENSE_CELL_LIMIT`] cells (beyond that it is
//! reported `dnf` — the n ≤ 6 ceiling the old stack imposed on this
//! table's ancestors).
//!
//! `--emit <file>` writes a JSON artifact **without wall times** —
//! instance fingerprints, bounds, certified makespans, node/iteration
//! counts, and witness schedules — so CI can byte-compare runs at
//! `--threads 1` and `--threads 4` to pin search determinism.
//!
//! Usage: `table_exact [--quick | --full] [--seed <u64>] [--out <dir>]
//! [--threads <t>] [--emit <file>]`

use ocd_bench::table::Table;
use ocd_core::bounds::{counting_makespan_lower_bound, makespan_lower_bound};
use ocd_core::{Instance, NodeBudgets, Schedule, TokenSet};
use ocd_graph::generate::{gnp, GnpConfig};
use ocd_heuristics::{simulate, simulate_with, Ideal, NodeCapacity, SimConfig, StrategyKind};
use ocd_lp::MipOptions;
use ocd_solver::ip::{ip_problem, makespan_via_ip, MakespanOutcome};
use rand::prelude::*;
use serde::Serialize;

/// Dense tableau cell budget: `(rows + vars) · (vars + 2 rows)` beyond
/// this means the dense reference would thrash memory and minutes — the
/// cell is honestly `dnf` rather than waited out.
const DENSE_CELL_LIMIT: usize = 2_000_000;

/// Tokens broadcast from vertex 0 in every instance.
const PARTS: usize = 2;

struct Args {
    quick: bool,
    full: bool,
    seed: u64,
    out_dir: String,
    threads: usize,
    emit: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        quick: false,
        full: false,
        seed: 2005,
        out_dir: "results".to_string(),
        threads: 1,
        emit: None,
    };
    let mut iter = std::env::args().skip(1);
    let value = |iter: &mut dyn Iterator<Item = String>, flag: &str| {
        iter.next().ok_or(format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => out.quick = true,
            "--full" => out.full = true,
            "--seed" => {
                let v = value(&mut iter, "--seed")?;
                out.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
            }
            "--out" => out.out_dir = value(&mut iter, "--out")?,
            "--threads" => {
                let v = value(&mut iter, "--threads")?;
                out.threads = v.parse().map_err(|_| format!("invalid threads `{v}`"))?;
                if out.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--emit" => out.emit = Some(value(&mut iter, "--emit")?),
            "--help" | "-h" => {
                return Err(
                    "usage: [--quick | --full] [--seed <u64>] [--out <dir>] [--threads <t>] \
                     [--emit <file>]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(out)
}

/// One entry of the determinism artifact: everything the solve decided,
/// nothing the clock measured.
#[derive(Serialize)]
struct ExactRecord {
    n: usize,
    arcs: usize,
    budgets: String,
    seed: u64,
    lb: usize,
    heur_steps: usize,
    status: String,
    makespan: Option<usize>,
    mip_nodes: Option<usize>,
    lp_iterations: Option<u64>,
    schedule: Option<Schedule>,
}

/// Deterministic heuristic upper bound: the budget-aware
/// per-neighbor-queue policy under admission control when budgets bind,
/// plain Local otherwise.
fn heuristic_upper_bound(instance: &Instance, seed: u64) -> (String, usize) {
    let config = SimConfig {
        max_steps: 16 * instance.num_vertices() + 64,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    match instance.node_budgets() {
        Some(b) => {
            let mut strategy = StrategyKind::PerNeighborQueue.build();
            let mut medium = NodeCapacity::new(Ideal, b.clone());
            let outcome =
                simulate_with(instance, strategy.as_mut(), &mut medium, &config, &mut rng);
            assert!(outcome.report.success, "per-neighbor-queue must finish");
            ("per-neighbor-queue".to_string(), outcome.report.steps)
        }
        None => {
            let mut strategy = StrategyKind::Local.build();
            let report = simulate(instance, strategy.as_mut(), &config, &mut rng);
            assert!(report.success, "local heuristic must finish");
            ("local".to_string(), report.steps)
        }
    }
}

/// Times one closure in milliseconds.
fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let sizes: &[usize] = match (args.quick, args.full) {
        (true, _) => &[8, 16],
        (false, false) => &[8, 16, 32, 50, 64],
        (false, true) => &[8, 16, 32, 50, 64, 80, 100],
    };
    // Feasibility mode: the makespan certificate only needs *a* feasible
    // integer point per horizon, not the bandwidth optimum. The node cap
    // shrinks with n (per-node LP cost grows with the model) so an
    // infeasibility proof the counting bound cannot shortcut degrades to
    // an honest `gap[lo,hi]` row in bounded wall time instead of
    // stalling the sweep for hours. Budgeted rows cap much harder:
    // uplink-1 refutations at the lower bound are exponential past
    // n ≈ 8 (n = 16 already needs > 20 000 nodes) while feasible
    // horizons fall to the dive in a handful of nodes, so a generous
    // cap converts to the same gap row, only slower. `--quick` caps
    // hardest because it is the CI smoke. Caps are pure functions of
    // `(n, regime)` — never of the clock — so the emitted artifact
    // stays byte-identical across thread counts.
    let mip_for = |n: usize, budgeted: bool| MipOptions {
        threads: args.threads,
        absolute_gap: 1e12,
        node_limit: match (args.quick, budgeted) {
            (true, _) => (8_000 / n).clamp(200, 1_000),
            (false, false) => (40_000 / n).clamp(500, 2_500),
            (false, true) => (10_000 / n).clamp(150, 1_250),
        },
        ..MipOptions::default()
    };
    println!(
        "exact anchors: G(n, 2 ln n / n), {PARTS} parts, threads = {}, sizes = {sizes:?}\n",
        args.threads
    );
    let mut table = Table::new([
        "topology",
        "n",
        "arcs",
        "budgets",
        "lb",
        "heur",
        "heur_steps",
        "makespan",
        "status",
        "mip_nodes",
        "lp_iters",
        "ip_ms",
        "lp_ms",
        "dense_lp_ms",
    ]);
    let mut records: Vec<ExactRecord> = Vec::new();

    for &n in sizes {
        let seed = args.seed ^ n as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let config = GnpConfig {
            capacity: 1..=1,
            ..GnpConfig::paper(n)
        };
        let g = gnp(&config, &mut rng);
        let arcs = g.edge_count();
        for budgets in [None, Some(NodeBudgets::uplink_only(n, 1))] {
            let budget_name = match &budgets {
                None => "free",
                Some(_) => "uplink-1",
            };
            let mut builder = Instance::builder(g.clone(), PARTS)
                .have_set(0, TokenSet::full(PARTS))
                .want_all_everywhere();
            if let Some(b) = budgets {
                builder = builder.node_budgets(b);
            }
            let instance = builder.build().expect("vertex 0 holds every part");
            assert!(instance.is_satisfiable(), "G(n,p) overlay is connected");

            let lb = makespan_lower_bound(&instance).max(counting_makespan_lower_bound(&instance));
            let (heur_name, heur_steps) = heuristic_upper_bound(&instance, seed);
            let (outcome, ip_ms) = time_ms(|| {
                makespan_via_ip(
                    &instance,
                    heur_steps,
                    &mip_for(n, instance.node_budgets().is_some()),
                )
                .expect("simplex healthy")
            });
            let (status, makespan, nodes, iters, schedule) = match outcome {
                MakespanOutcome::Certified(cert) => {
                    assert!(cert.makespan >= lb && cert.makespan <= heur_steps);
                    (
                        "optimal".to_string(),
                        Some(cert.makespan),
                        Some(cert.result.mip_nodes),
                        Some(cert.result.lp_iterations),
                        Some(cert.result.schedule),
                    )
                }
                MakespanOutcome::ResourceLimit { stalled_at } => (
                    format!("gap[{stalled_at},{heur_steps}]"),
                    None,
                    None,
                    None,
                    None,
                ),
                other => panic!("heuristic horizon must be feasible, got {other:?}"),
            };

            // LP-relaxation timing at the decided horizon: sparse always,
            // dense only while its tableau fits the cell budget.
            let horizon = makespan.unwrap_or(heur_steps);
            let problem = ip_problem(&instance, horizon).expect("horizon ≥ 1");
            let (rows, cols) = (problem.num_constraints(), problem.num_vars());
            let (lp, lp_ms) = time_ms(|| problem.solve_lp());
            lp.expect("relaxation feasible at a feasible horizon");
            let dense_cells = (rows + cols).saturating_mul(cols + 2 * rows);
            let dense_ms = if dense_cells <= DENSE_CELL_LIMIT {
                let (dense, ms) = time_ms(|| problem.solve_lp_dense());
                dense.expect("dense agrees on feasibility");
                format!("{ms:.1}")
            } else {
                "dnf".to_string()
            };

            println!(
                "n = {n:>3} {budget_name:<8} lb = {lb} heur = {heur_steps} -> {status} \
                 ({ip_ms:.0} ms)"
            );
            table.row([
                "gnp".to_string(),
                n.to_string(),
                arcs.to_string(),
                budget_name.to_string(),
                lb.to_string(),
                heur_name.clone(),
                heur_steps.to_string(),
                makespan.map_or_else(|| "-".to_string(), |m| m.to_string()),
                status.clone(),
                nodes.map_or_else(|| "-".to_string(), |v| v.to_string()),
                iters.map_or_else(|| "-".to_string(), |v| v.to_string()),
                format!("{ip_ms:.1}"),
                format!("{lp_ms:.1}"),
                dense_ms,
            ]);
            records.push(ExactRecord {
                n,
                arcs,
                budgets: budget_name.to_string(),
                seed,
                lb,
                heur_steps,
                status,
                makespan,
                mip_nodes: nodes,
                lp_iterations: iters,
                schedule,
            });
        }
    }

    println!("\n{}", table.render());
    table
        .write_csv(format!("{}/table_exact.csv", args.out_dir))
        .expect("write csv");
    if let Some(path) = &args.emit {
        let json = serde_json::to_string_pretty(&records).expect("serialize records");
        std::fs::write(path, json).expect("write determinism artifact");
        println!("wrote determinism artifact to {path}");
    }
}
