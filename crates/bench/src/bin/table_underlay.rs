//! Realistic topologies (paper §6): how optimistic is the
//! overlay-capacity-independence assumption?
//!
//! A transit-stub *physical* network hosts an overlay whose links are
//! routed over physical shortest paths. The same strategy runs twice on
//! the same instance: once against the pure overlay model and once with
//! physical admission control (overlay links sharing a physical link
//! share its capacity). The table reports the completion-time inflation
//! and the physical link stress.
//!
//! Constrained runs are reported through the shared
//! [`RunRecord`](ocd_core::RunRecord) artifact: each metric column is
//! read back out of the record, every
//! record is re-certified before being quoted, and the first record per
//! strategy is written to `{out_dir}/logs/` as an exemplar JSON
//! artifact.

use ocd_bench::args::ExpArgs;
use ocd_bench::stats::Summary;
use ocd_bench::table::Table;
use ocd_core::scenario::single_file;
use ocd_graph::generate::{gnp, transit_stub, GnpConfig, TransitStubConfig};
use ocd_graph::underlay::Underlay;
use ocd_graph::NodeId;
use ocd_heuristics::{simulate, simulate_with, PhysicalUnderlay, SimConfig, StrategyKind};
use rand::prelude::*;

fn main() {
    let args = ExpArgs::from_env();
    let (phys_target, overlay_n, tokens, runs) = if args.quick {
        (40, 12, 16, 2)
    } else {
        (150, 40, 64, 5)
    };
    let kinds = [
        StrategyKind::Random,
        StrategyKind::Local,
        StrategyKind::Global,
    ];
    let config = SimConfig {
        max_steps: 50_000,
        metrics: true,
        ..Default::default()
    };
    // The trailing metrics column group (`util_max`, `util_mean`) is
    // read from the record's embedded `engine.arc_tokens` utilization
    // series — per-arc data the old ad-hoc counters threw away.
    let mut table = Table::new([
        "strategy",
        "overlay_moves",
        "physical_moves",
        "inflation",
        "rejected",
        "max_stress",
        "util_max",
        "util_mean",
        "run_ms",
    ]);
    let logs_dir = format!("{}/logs", args.out_dir);
    std::fs::create_dir_all(&logs_dir).expect("create logs dir");

    for kind in kinds {
        let mut overlay_moves = Vec::new();
        let mut physical_moves = Vec::new();
        let mut rejected = Vec::new();
        let mut stress = Vec::new();
        let mut util_max = Vec::new();
        let mut util_mean = Vec::new();
        let mut run_ms = Vec::new();
        for r in 0..runs {
            let mut rng = StdRng::seed_from_u64(args.seed ^ (r << 11));
            // Physical network: transit-stub with hosts in the stubs.
            let ts = TransitStubConfig::paper_sized(phys_target);
            let physical = transit_stub(&ts, &mut rng);
            let backbone = ts.transit_domains * ts.transit_nodes;
            let mut host_pool: Vec<NodeId> =
                (backbone..physical.node_count()).map(NodeId::new).collect();
            host_pool.shuffle(&mut rng);
            let hosts: Vec<NodeId> = host_pool.into_iter().take(overlay_n).collect();
            // Overlay among the hosts: the paper's random-graph regime.
            let overlay = gnp(&GnpConfig::paper(overlay_n), &mut rng);
            let underlay = Underlay::new(physical.clone(), hosts).expect("hosts in range");
            let mapping = underlay
                .map_overlay(&overlay)
                .expect("physical net is connected");
            let instance = single_file(overlay, tokens, 0);

            let mut s1 = kind.build();
            let mut rng1 = StdRng::seed_from_u64(args.seed ^ r);
            let pure = simulate(&instance, s1.as_mut(), &config, &mut rng1);
            assert!(pure.success, "{kind} failed on the pure overlay");
            let mut s2 = kind.build();
            let mut rng2 = StdRng::seed_from_u64(args.seed ^ r);
            let mut medium = PhysicalUnderlay::new(&physical, &mapping);
            let constrained =
                simulate_with(&instance, s2.as_mut(), &mut medium, &config, &mut rng2).to_record(
                    &instance,
                    kind.name(),
                    "physical-underlay",
                    args.seed ^ r,
                );
            assert!(constrained.success, "{kind} failed under admission");
            constrained.certify().expect("underlay record re-validates");
            if r == 0 {
                constrained
                    .write_json(format!("{logs_dir}/underlay_{kind}.json").as_ref())
                    .expect("write run record");
            }
            let arc_tokens = constrained
                .metrics
                .as_ref()
                .and_then(|snap| snap.series("engine.arc_tokens"))
                .expect("metrics-enabled record embeds the utilization series");
            util_max.push(arc_tokens.iter().copied().max().unwrap_or(0));
            util_mean.push(arc_tokens.iter().sum::<u64>() / (arc_tokens.len().max(1) as u64));
            overlay_moves.push(pure.steps as u64);
            physical_moves.push(constrained.steps as u64);
            rejected.push(constrained.total_rejected());
            stress.push(u64::from(mapping.max_stress(physical.edge_count())));
            run_ms.push(constrained.run_ms());
        }
        let om = Summary::of_ints(&overlay_moves);
        let pm = Summary::of_ints(&physical_moves);
        table.row([
            kind.name().to_string(),
            om.to_string(),
            pm.to_string(),
            format!("{:.2}x", pm.mean / om.mean.max(1.0)),
            Summary::of_ints(&rejected).to_string(),
            Summary::of_ints(&stress).to_string(),
            Summary::of_ints(&util_max).to_string(),
            Summary::of_ints(&util_mean).to_string(),
            Summary::of(&run_ms).to_string(),
        ]);
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/table_underlay.csv", args.out_dir))
        .expect("write csv");
}
