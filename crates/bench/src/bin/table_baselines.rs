//! Architectural baselines from the paper's related-work survey (§2),
//! measured inside the OCD framework: single-tree push (Overcast-style),
//! striped tree forests (SplitStream/CoopNet-style, k = 4), and the
//! paper's mesh heuristics — all on the same single-source instance.
//!
//! The point the paper's framing enables: tree architectures are
//! *structural* answers that never exploit cross-links, and the mesh
//! heuristics dominate them on makespan at equal or better bandwidth
//! once demand is dense.

use ocd_bench::args::ExpArgs;
use ocd_bench::stats::Summary;
use ocd_bench::table::Table;
use ocd_core::{bounds, prune};
use ocd_graph::generate::paper_random;
use ocd_heuristics::{simulate, SimConfig, Strategy, StrategyKind, TreeStripe};
use rand::prelude::*;

fn contenders() -> Vec<(String, Box<dyn Strategy>)> {
    vec![
        (
            "tree-stripe-k1 (Overcast-ish)".into(),
            Box::new(TreeStripe::new(1)) as Box<dyn Strategy>,
        ),
        (
            "tree-stripe-k4 (SplitStream-ish)".into(),
            Box::new(TreeStripe::new(4)),
        ),
        ("round-robin".into(), StrategyKind::RoundRobin.build()),
        ("random".into(), StrategyKind::Random.build()),
        (
            "local (Bullet-ish mesh)".into(),
            StrategyKind::Local.build(),
        ),
        ("global".into(), StrategyKind::Global.build()),
    ]
}

fn main() {
    let args = ExpArgs::from_env();
    let (n, tokens, runs) = if args.quick {
        (30, 32, 2)
    } else {
        (100, 128, 5)
    };
    let mut table = Table::new(["architecture", "moves", "bandwidth", "pruned_bw"]);

    let mut rng = StdRng::seed_from_u64(args.seed);
    let topology = paper_random(n, &mut rng);
    let instance = ocd_core::scenario::single_file(topology, tokens, 0);
    println!(
        "single source, n = {n}, m = {tokens}; lower bounds: {} moves, {} bandwidth\n",
        bounds::makespan_lower_bound(&instance),
        bounds::bandwidth_lower_bound(&instance)
    );

    for (label, mut strategy) in contenders() {
        let mut moves = Vec::new();
        let mut bw = Vec::new();
        let mut pruned_bw = Vec::new();
        for r in 0..runs {
            let mut run_rng = StdRng::seed_from_u64(args.seed ^ r);
            let report = simulate(
                &instance,
                strategy.as_mut(),
                &SimConfig::default(),
                &mut run_rng,
            );
            assert!(report.success, "{label} failed");
            moves.push(report.steps as u64);
            bw.push(report.bandwidth);
            let (p, _) = prune::prune(&instance, &report.schedule);
            pruned_bw.push(p.bandwidth());
        }
        table.row([
            label,
            Summary::of_ints(&moves).to_string(),
            Summary::of_ints(&bw).to_string(),
            Summary::of_ints(&pruned_bw).to_string(),
        ]);
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/table_baselines.csv", args.out_dir))
        .expect("write csv");
}
