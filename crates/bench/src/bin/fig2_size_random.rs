//! Figure 2: moves and bandwidth as a function of graph size — single
//! source and single file to all receivers on random graphs.
//!
//! Paper parameters (§5.2): graphs of 20–1000 vertices with edges added
//! at probability `2 ln n / n`, a single file of 200 tokens at one
//! source, edge weights uniform in 3..=15, several graph instances per
//! size, each heuristic repeated 3 times.

use ocd_bench::args::ExpArgs;
use ocd_bench::runner::{bounds_of, derive_seeds, evaluate, figure_table, push_rows};
use ocd_core::scenario::single_file;
use ocd_graph::generate::paper_random;
use ocd_heuristics::{SimConfig, StrategyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let (sizes, tokens): (&[usize], usize) = if args.quick {
        (&[20, 50, 100], 50)
    } else {
        (&[20, 50, 100, 200, 400, 700, 1000], 200)
    };
    let kinds = StrategyKind::paper_five();
    let config = SimConfig::default();
    let mut table = figure_table("n");

    for &n in sizes {
        let graphs = if args.quick {
            1
        } else if n <= 200 {
            3
        } else {
            2
        };
        let repeats = if args.quick { 2 } else { 3 };
        eprintln!("n = {n}: {graphs} graphs × {repeats} repeats…");
        for gi in 0..graphs {
            let mut topo_rng = StdRng::seed_from_u64(args.seed ^ (n as u64) << 8 ^ gi);
            let topology = paper_random(n, &mut topo_rng);
            let instance = single_file(topology, tokens, 0);
            let seeds = derive_seeds(args.seed ^ (n as u64) << 20 ^ gi, repeats);
            let stats = evaluate(&instance, &kinds, &seeds, &config);
            let bounds = bounds_of(&instance);
            push_rows(&mut table, &n.to_string(), &stats, &bounds);
        }
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/fig2_size_random.csv", args.out_dir))
        .expect("write csv");
}
