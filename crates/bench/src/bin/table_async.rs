//! Beyond the paper: the §5.1 heuristics as asynchronous swarm
//! protocols (`ocd-net`) under degrading link conditions — latency,
//! jitter, and loss — with a mid-run crash/restart thrown in at the
//! harshest setting.
//!
//! Expected shape: completion time degrades *gracefully* with loss —
//! retransmits and duplicate deliveries rise, but the swarm keeps
//! finishing (success stays at the full run count) rather than
//! stalling. The `latency=1, loss=0` row is the lockstep-equivalent
//! ideal mode: its makespan matches `fig2`-style synchronized rounds.

use ocd_bench::args::ExpArgs;
use ocd_bench::stats::Summary;
use ocd_bench::table::Table;
use ocd_core::validate;
use ocd_graph::generate::paper_random;
use ocd_net::{run_swarm, FaultPlan, NetConfig, NetPolicy};
use rand::prelude::*;

/// The most frequent bottleneck arc across runs (ties to the
/// lexicographically smallest label), or `-` when no run had one.
fn modal_arc(labels: &[String]) -> String {
    let mut counts = std::collections::BTreeMap::new();
    for label in labels {
        *counts.entry(label.as_str()).or_insert(0u32) += 1;
    }
    counts
        .into_iter()
        .max_by(|(a, ca), (b, cb)| ca.cmp(cb).then(b.cmp(a)))
        .map_or_else(|| "-".to_string(), |(label, _)| label.to_string())
}

fn main() {
    let args = ExpArgs::from_env();
    let (n, tokens) = if args.quick { (20, 16) } else { (40, 48) };
    let runs = if args.quick { 2 } else { 5 };

    let mut rng = StdRng::seed_from_u64(args.seed);
    let topology = paper_random(n, &mut rng);
    let instance = ocd_core::scenario::single_file(topology, tokens, 0);
    println!("single file, n = {n}, m = {tokens}, asynchronous runtime\n");

    // (label, latency, jitter, loss, crash a vertex mid-run?)
    let conditions: [(&str, u32, u32, f64, bool); 5] = [
        ("ideal (lockstep)", 1, 0, 0.00, false),
        ("latency-3", 3, 0, 0.00, false),
        ("jitter-2", 3, 2, 0.00, false),
        ("loss-10%", 3, 2, 0.10, false),
        ("loss-25%+crash", 3, 2, 0.25, true),
    ];

    // The trailing metrics column group is read from the unified
    // `net.*` metrics snapshot rather than ad-hoc report fields;
    // `crit_len`/`crit_arc` come from the runtime-recorded causal
    // provenance (the trace survives loss, crashes, and retries).
    let mut table = Table::new([
        "condition",
        "policy",
        "success",
        "ticks",
        "bandwidth",
        "retransmits",
        "duplicate_deliveries",
        "timeouts",
        "ctrl_msgs",
        "max_queue",
        "crit_len",
        "crit_arc",
    ]);
    for (label, latency, jitter, loss, with_crash) in conditions {
        for policy in [NetPolicy::Random, NetPolicy::Local] {
            let config = NetConfig {
                policy,
                latency,
                jitter,
                loss,
                control_latency: 1.min(latency - 1),
                control_loss: loss / 2.0,
                have_refresh: 6,
                record_provenance: true,
                ..NetConfig::default()
            };
            let faults = if with_crash {
                FaultPlan::none().crash_between(instance.graph().node(n / 2), 8, 40)
            } else {
                FaultPlan::none()
            };
            let mut ticks = Vec::new();
            let mut bandwidth = Vec::new();
            let mut retransmits = Vec::new();
            let mut duplicates = Vec::new();
            let mut timeouts = Vec::new();
            let mut ctrl_msgs = Vec::new();
            let mut max_queue = Vec::new();
            let mut crit_len = Vec::new();
            let mut crit_arcs = Vec::new();
            let mut successes = 0u32;
            for r in 0..runs {
                let mut run_rng = StdRng::seed_from_u64(args.seed ^ ((r as u64) << 7));
                let report = run_swarm(&instance, &config, &faults, &mut run_rng);
                // Every extracted schedule is a certified legal sequence.
                let replay = validate::replay(&instance, &report.schedule)
                    .expect("extracted schedule must validate");
                assert!(report.accounts_for_every_token());
                if report.success {
                    assert!(replay.is_successful());
                    successes += 1;
                    let snap = report.metrics_snapshot();
                    ticks.push(report.ticks);
                    bandwidth.push(report.bandwidth());
                    retransmits.push(report.retransmits);
                    duplicates.push(report.duplicate_deliveries);
                    timeouts.push(snap.counter("net.request_timeouts").unwrap_or(0));
                    ctrl_msgs.push(
                        snap.counter("net.msgs_sent.have").unwrap_or(0)
                            + snap.counter("net.msgs_sent.request").unwrap_or(0)
                            + snap.counter("net.msgs_sent.cancel").unwrap_or(0),
                    );
                    max_queue.push(
                        snap.series("net.arc_max_queue_depth")
                            .map_or(0, |s| s.iter().copied().max().unwrap_or(0)),
                    );
                    let prov = report.provenance.as_ref().expect("record_provenance is on");
                    let analysis = prov.analyze(&instance);
                    crit_len.push(analysis.crit_len() as u64);
                    if let Some(arc) = analysis.crit_arc() {
                        let e = instance.graph().edge(arc);
                        crit_arcs.push(format!("{}->{}", e.src.index(), e.dst.index()));
                    }
                }
            }
            table.row([
                label.to_string(),
                policy.name().to_string(),
                format!("{}/{}", successes, runs),
                Summary::of_ints(&ticks).to_string(),
                Summary::of_ints(&bandwidth).to_string(),
                Summary::of_ints(&retransmits).to_string(),
                Summary::of_ints(&duplicates).to_string(),
                Summary::of_ints(&timeouts).to_string(),
                Summary::of_ints(&ctrl_msgs).to_string(),
                Summary::of_ints(&max_queue).to_string(),
                Summary::of_ints(&crit_len).to_string(),
                modal_arc(&crit_arcs),
            ]);
        }
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/table_async.csv", args.out_dir))
        .expect("write csv");
}
