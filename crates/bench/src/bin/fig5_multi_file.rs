//! Figure 5: moves and bandwidth as a function of the number of files —
//! all receivers want exactly one file subdivided from the same set of
//! tokens, sourced at a single vertex.
//!
//! Paper parameters (§5.3): 200 vertices, 512 tokens at one source;
//! repeatedly halve both the file and the vertex groups (1 file × 512
//! tokens … 128 files × 4 tokens). Expected shapes: a large initial
//! descent in moves, then all flooding heuristics level off with
//! near-identical bandwidth; only the Bandwidth heuristic improves as
//! demand becomes more directional, tracking the lower bound and the
//! pruned flooding curves.

use ocd_bench::args::ExpArgs;
use ocd_bench::runner::{bounds_of, derive_seeds, evaluate, figure_table, push_rows};
use ocd_core::scenario::multi_file;
use ocd_graph::generate::paper_random;
use ocd_heuristics::{SimConfig, StrategyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let (n, tokens, file_counts): (usize, usize, Vec<usize>) = if args.quick {
        (40, 64, vec![1, 4, 16])
    } else {
        (200, 512, vec![1, 2, 4, 8, 16, 32, 64, 128])
    };
    let kinds = StrategyKind::paper_five();
    let config = SimConfig::default();
    let mut table = figure_table("files");

    let graphs = if args.quick { 1 } else { 2 };
    let repeats = if args.quick { 2 } else { 3 };
    for &k in &file_counts {
        eprintln!("files = {k}…");
        for gi in 0..graphs {
            let mut topo_rng = StdRng::seed_from_u64(args.seed ^ gi << 5);
            let topology = paper_random(n, &mut topo_rng);
            let instance = multi_file(topology, tokens, k, 0);
            let seeds = derive_seeds(args.seed ^ (k as u64) << 13 ^ gi, repeats);
            let stats = evaluate(&instance, &kinds, &seeds, &config);
            let bounds = bounds_of(&instance);
            push_rows(&mut table, &k.to_string(), &stats, &bounds);
        }
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/fig5_multi_file.csv", args.out_dir))
        .expect("write csv");
}
