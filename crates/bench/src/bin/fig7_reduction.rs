//! Figure 7 / Theorem 5: the Dominating-Set → FOCD reduction.
//!
//! For a sweep of random graphs, checks that the graph has a dominating
//! set of size ≤ k **iff** the reduced FOCD instance is satisfiable in
//! two timesteps, and that the dominating set extracted from the 2-step
//! schedule is valid. This is the executable form of the paper's
//! NP-hardness appendix.

use ocd_bench::args::ExpArgs;
use ocd_bench::table::Table;
use ocd_graph::algo::{dominating_set_exact, is_dominating_set};
use ocd_graph::DiGraph;
use ocd_solver::bnb::{decide_focd, BnbOptions};
use ocd_solver::reduction::{dominating_set_from_schedule, focd_from_dominating_set};
use rand::prelude::*;

fn main() {
    let args = ExpArgs::from_env();
    let sizes: &[usize] = if args.quick {
        &[3, 4]
    } else {
        &[3, 4, 5, 6, 7]
    };
    let graphs_per_size = if args.quick { 2 } else { 4 };

    let mut table = Table::new([
        "n",
        "graph",
        "k",
        "gamma(G)",
        "DS<=k",
        "FOCD_2step",
        "agree",
        "witness_ok",
    ]);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut disagreements = 0u32;

    for &n in sizes {
        for gi in 0..graphs_per_size {
            let mut g = DiGraph::with_nodes(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_bool(0.4) {
                        g.add_edge_symmetric(g.node(u), g.node(v), 1).unwrap();
                    }
                }
            }
            let gamma = dominating_set_exact(&g).len();
            for k in 1..n {
                let expected = gamma <= k;
                let (instance, layout) = focd_from_dominating_set(&g, k);
                let schedule =
                    decide_focd(&instance, 2, &BnbOptions::default()).expect("node budget");
                let got = schedule.is_some();
                let witness_ok = match &schedule {
                    Some(s) => {
                        let ds = dominating_set_from_schedule(&layout, &instance, s);
                        ds.len() <= k && is_dominating_set(&g, &ds)
                    }
                    None => true,
                };
                if got != expected || !witness_ok {
                    disagreements += 1;
                }
                table.row([
                    n.to_string(),
                    gi.to_string(),
                    k.to_string(),
                    gamma.to_string(),
                    expected.to_string(),
                    got.to_string(),
                    (got == expected).to_string(),
                    witness_ok.to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "theorem 5 check: {} disagreements across {} cases",
        disagreements,
        table.len()
    );
    table
        .write_csv(format!("{}/fig7_reduction.csv", args.out_dir))
        .expect("write csv");
    assert_eq!(disagreements, 0, "reduction must agree with exact DS");
}
