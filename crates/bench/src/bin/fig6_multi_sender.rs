//! Figure 6: moves and bandwidth as a function of the number of files
//! with *random senders* — the Figure 5 subdivision scenario where each
//! file's source is a random vertex that does not want it.
//!
//! The paper reports this figure "closely mimics" Figure 5: the same
//! trends appear whether the files start at a single place or at many.

use ocd_bench::args::ExpArgs;
use ocd_bench::runner::{bounds_of, derive_seeds, evaluate, figure_table, push_rows};
use ocd_core::scenario::multi_sender;
use ocd_graph::generate::paper_random;
use ocd_heuristics::{SimConfig, StrategyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::from_env();
    let (n, tokens, file_counts): (usize, usize, Vec<usize>) = if args.quick {
        (40, 64, vec![2, 8])
    } else {
        // k = 1 would make every vertex want the single file, leaving no
        // eligible non-wanting source; the sweep starts at 2.
        (200, 512, vec![2, 4, 8, 16, 32, 64, 128])
    };
    let kinds = StrategyKind::paper_five();
    let config = SimConfig::default();
    let mut table = figure_table("files");

    let graphs = if args.quick { 1 } else { 2 };
    let repeats = if args.quick { 2 } else { 3 };
    for &k in &file_counts {
        eprintln!("files = {k}…");
        for gi in 0..graphs {
            let mut topo_rng = StdRng::seed_from_u64(args.seed ^ gi << 6);
            let topology = paper_random(n, &mut topo_rng);
            let mut sender_rng = StdRng::seed_from_u64(args.seed ^ (k as u64) << 3 ^ gi);
            let instance = multi_sender(topology, tokens, k, &mut sender_rng);
            let seeds = derive_seeds(args.seed ^ (k as u64) << 14 ^ gi, repeats);
            let stats = evaluate(&instance, &kinds, &seeds, &config);
            let bounds = bounds_of(&instance);
            push_rows(&mut table, &k.to_string(), &stats, &bounds);
        }
    }
    println!("{}", table.render());
    table
        .write_csv(format!("{}/fig6_multi_sender.csv", args.out_dir))
        .expect("write csv");
}
