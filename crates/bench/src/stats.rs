//! Summary statistics over repeated runs.

use std::fmt;

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample. Returns a zeroed summary for an empty one.
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }

    /// Summarizes an integer sample.
    #[must_use]
    pub fn of_ints(values: &[u64]) -> Summary {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&floats)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n <= 1 || self.std == 0.0 {
            write!(f, "{:.1}", self.mean)
        } else {
            write!(f, "{:.1}±{:.1}", self.mean, self.std)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.to_string(), "4.0");
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of_ints(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((s.std - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.to_string().starts_with("5.0±2.1"));
    }
}
