//! Summary statistics over repeated runs.

use std::fmt;

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// The summary of an empty sample: all statistics zero, `n = 0`.
    /// Kept explicit (rather than relying on `∞`/`-∞` fold identities
    /// leaking out of [`Summary::of`]) so "no observations" is an
    /// honest, comparable value that displays as `-`.
    pub const EMPTY: Summary = Summary {
        mean: 0.0,
        std: 0.0,
        min: 0.0,
        max: 0.0,
        n: 0,
    };

    /// Summarizes a sample. Returns [`Summary::EMPTY`] for an empty one.
    ///
    /// **NaN contract:** if any observation is NaN, *every* statistic
    /// (`mean`, `std`, `min`, `max`) is NaN. Previously the mean went
    /// NaN while the `f64::min`/`f64::max` folds silently skipped NaN,
    /// leaving a summary that looked half-valid; a poisoned sample now
    /// poisons the whole summary consistently ([`Summary::is_nan`]).
    /// `n` still counts the observations.
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary::EMPTY;
        }
        if values.iter().any(|v| v.is_nan()) {
            return Summary {
                mean: f64::NAN,
                std: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                n,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }

    /// Summarizes an integer sample.
    #[must_use]
    pub fn of_ints(values: &[u64]) -> Summary {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&floats)
    }

    /// Whether the sample was poisoned by a NaN observation (see the
    /// NaN contract on [`Summary::of`]).
    #[must_use]
    pub fn is_nan(&self) -> bool {
        self.mean.is_nan()
    }
}

/// `-` for no observations, the bare mean for a single one, and
/// `mean±std` for real samples — including `±0.0`, so a zero-variance
/// sample is distinguishable from a singleton in the tables.
impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            0 => write!(f, "-"),
            1 => write!(f, "{:.1}", self.mean),
            _ => write!(f, "{:.1}±{:.1}", self.mean, self.std),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s, Summary::EMPTY);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0, "no ∞ fold identity may leak");
        assert_eq!(s.max, 0.0, "no -∞ fold identity may leak");
        assert_eq!(s.to_string(), "-", "empty samples display explicitly");
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.to_string(), "4.0", "singletons display the bare mean");
    }

    #[test]
    fn zero_variance_sample_still_shows_deviation() {
        // Before, `std == 0.0` silently collapsed to the bare-mean form,
        // making a 100-run zero-variance sample indistinguishable from a
        // single run.
        let s = Summary::of_ints(&[3, 3, 3]);
        assert_eq!(s.n, 3);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.to_string(), "3.0±0.0");
    }

    #[test]
    fn nan_poisons_every_statistic() {
        // Regression: min/max used `f64::min`/`f64::max` folds, which
        // skip NaN — a poisoned sample reported a NaN mean next to
        // valid-looking extrema.
        for sample in [
            vec![f64::NAN],
            vec![1.0, f64::NAN, 3.0],
            vec![f64::NAN, f64::NAN],
        ] {
            let s = Summary::of(&sample);
            assert!(s.is_nan(), "{sample:?}");
            assert!(s.mean.is_nan(), "{sample:?}");
            assert!(s.std.is_nan(), "{sample:?}");
            assert!(s.min.is_nan(), "{sample:?}: min must not look valid");
            assert!(s.max.is_nan(), "{sample:?}: max must not look valid");
            assert_eq!(s.n, sample.len(), "n still counts observations");
        }
        assert!(!Summary::of(&[1.0, 2.0]).is_nan());
        assert!(!Summary::EMPTY.is_nan());
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of_ints(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((s.std - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.to_string().starts_with("5.0±2.1"));
    }
}
