//! Minimal shared argument parsing for the figure binaries.

/// Options common to all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpArgs {
    /// Reduced sweep for CI / smoke testing.
    pub quick: bool,
    /// Extended sweep beyond the default grids.
    pub full: bool,
    /// Master seed; per-run seeds derive from it deterministically.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: String,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            quick: false,
            full: false,
            seed: 2005, // the paper's publication year, for flavor
            out_dir: "results".to_string(),
        }
    }
}

impl ExpArgs {
    /// Parses `--quick`, `--full`, `--seed <u64>`, `--out <dir>` from an
    /// iterator of arguments (typically `std::env::args().skip(1)`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown flags or malformed
    /// values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<ExpArgs, String> {
        let mut out = ExpArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--full" => out.full = true,
                "--seed" => {
                    let v = iter.next().ok_or("--seed requires a value")?;
                    out.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
                }
                "--out" => {
                    out.out_dir = iter.next().ok_or("--out requires a directory")?;
                }
                "--help" | "-h" => {
                    return Err("usage: [--quick | --full] [--seed <u64>] [--out <dir>]".to_string())
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// Parses from the process environment, exiting with the message on
    /// error (binaries call this at the top of `main`).
    #[must_use]
    pub fn from_env() -> ExpArgs {
        match ExpArgs::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert!(!a.quick);
        assert_eq!(a.seed, 2005);
        assert_eq!(a.out_dir, "results");
    }

    #[test]
    fn all_flags() {
        let a = parse(&["--quick", "--full", "--seed", "9", "--out", "tmp"]).unwrap();
        assert!(a.quick);
        assert!(a.full);
        assert_eq!(a.seed, 9);
        assert_eq!(a.out_dir, "tmp");
    }

    #[test]
    fn errors() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--bogus"]).unwrap_err().contains("bogus"));
        assert!(parse(&["--help"]).unwrap_err().contains("usage"));
    }
}
