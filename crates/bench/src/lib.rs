//! Experiment harness reproducing every figure and table of the OCD
//! paper's evaluation (§5).
//!
//! Each figure has a binary under `src/bin/` that regenerates its data
//! series as an aligned table on stdout and a CSV under `results/`:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_tradeoff` | Figure 1 (time/bandwidth at odds) |
//! | `fig2_size_random` | Figure 2 (moves & bandwidth vs graph size, random) |
//! | `fig3_size_transit_stub` | Figure 3 (same, transit-stub) |
//! | `fig4_receiver_density` | Figure 4 (moves & bandwidth vs want density) |
//! | `fig5_multi_file` | Figure 5 (moves & bandwidth vs number of files) |
//! | `fig6_multi_sender` | Figure 6 (same, random per-file senders) |
//! | `fig7_reduction` | Figure 7 / Theorem 5 (Dominating Set ⟺ 2-step FOCD) |
//! | `table_optimal_small` | §3.4 exact optima vs heuristics on small graphs |
//! | `table_competitive_gap` | Theorem 4 (no c-competitive on-line algorithm) |
//!
//! All binaries accept `--quick` for a reduced sweep (CI-sized) and
//! `--seed <u64>` to change the master seed. The library half of the
//! crate hosts the shared machinery: multi-seed parallel evaluation
//! ([`runner`]), summary statistics ([`stats`]), aligned-table/CSV
//! output ([`table`]), and the perf-trajectory snapshot gate
//! ([`compare`], also exposed as the `bench_compare` binary and
//! `ocd bench compare`).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod args;
pub mod compare;
pub mod runner;
pub mod stats;
pub mod table;
