//! Multi-seed, multi-strategy evaluation of a single instance.
//!
//! The paper repeats each heuristic 3 times per graph (§5.2, noting the
//! variance is tiny); [`evaluate`] generalizes that: it runs every
//! requested strategy across a seed list — in parallel across runs via
//! [`std::thread::scope`] — and reports summary statistics of the
//! paper's metrics: **moves** (timesteps, the figures' y-axis name for
//! makespan), **bandwidth** (token transfers), and **pruned bandwidth**
//! (after the §5.1 post-processing).

use crate::stats::Summary;
use ocd_core::metrics::MetricsSnapshot;
use ocd_core::{bounds, prune, Instance, RunRecord};
use ocd_heuristics::{simulate_with, Ideal, SimConfig, StrategyKind};
use ocd_solver::steiner;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Aggregated metrics of one strategy over several seeded runs.
#[derive(Debug, Clone)]
pub struct StrategyStats {
    /// Which strategy.
    pub kind: StrategyKind,
    /// Fraction of runs that satisfied every want within the step cap.
    pub success_rate: f64,
    /// Timesteps to completion (the figures' "moves").
    pub moves: Summary,
    /// Token transfers (the figures' "bandwidth").
    pub bandwidth: Summary,
    /// Bandwidth after §5.1 pruning.
    pub pruned_bandwidth: Summary,
    /// Wall-clock milliseconds per run (successful runs only), from the
    /// engine's [`ocd_heuristics::SimReport::wall_nanos`] instrumentation.
    pub wall_ms: Summary,
    /// Merged metrics rollup over every run of this strategy
    /// (counters/histograms/series summed across runs, failed runs
    /// included); `None` unless `SimConfig::metrics` was set.
    pub metrics: Option<MetricsSnapshot>,
}

/// Instance-level bounds quoted alongside the heuristics in the figures.
#[derive(Debug, Clone, Copy)]
pub struct BoundsReport {
    /// `Σ_v |w(v) \ h(v)|` — the §5.1 remaining-bandwidth lower bound.
    pub bandwidth_lower: u64,
    /// The §5.1 radius/capacity makespan lower bound.
    pub makespan_lower: usize,
    /// The §3.3 per-token Steiner bandwidth upper bound (`None` if the
    /// instance is unsatisfiable).
    pub steiner_upper: Option<u64>,
}

/// Computes the bound lines for an instance.
#[must_use]
pub fn bounds_of(instance: &Instance) -> BoundsReport {
    BoundsReport {
        bandwidth_lower: bounds::bandwidth_lower_bound(instance),
        makespan_lower: bounds::makespan_lower_bound(instance),
        steiner_upper: steiner::bandwidth_upper_bound(instance).ok(),
    }
}

/// One seeded run of `kind` on `instance` under the ideal medium,
/// reported as the shared [`RunRecord`] artifact (the same JSON schema
/// the CLI's `run --record` emits). Every metric the table pipeline
/// quotes is read back out of the record, so a saved artifact
/// reproduces the tables exactly.
#[must_use]
pub fn record_run(
    instance: &Instance,
    kind: StrategyKind,
    config: &SimConfig,
    seed: u64,
) -> RunRecord {
    let mut strategy = kind.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = simulate_with(instance, strategy.as_mut(), &mut Ideal, config, &mut rng);
    outcome.to_record(instance, kind.name(), "ideal", seed)
}

/// Runs each strategy once per seed (in parallel across runs) and
/// aggregates the metrics. Failed runs (step cap) are excluded from the
/// metric summaries but reflected in `success_rate`.
#[must_use]
pub fn evaluate(
    instance: &Instance,
    kinds: &[StrategyKind],
    seeds: &[u64],
    config: &SimConfig,
) -> Vec<StrategyStats> {
    struct RunOutcome {
        seed: u64,
        success: bool,
        moves: u64,
        bandwidth: u64,
        pruned: u64,
        wall_ms: f64,
        metrics: Option<MetricsSnapshot>,
    }
    let run_one = |kind: StrategyKind, seed: u64| -> RunOutcome {
        let record = record_run(instance, kind, config, seed);
        let (pruned, _) = prune::prune(instance, &record.schedule);
        RunOutcome {
            seed,
            success: record.success,
            moves: record.steps as u64,
            bandwidth: record.bandwidth,
            pruned: pruned.bandwidth(),
            wall_ms: record.run_ms(),
            metrics: record.metrics,
        }
    };

    // Fan out across (kind, seed) with scoped threads, bounded by the
    // CPU count to avoid oversubscription on big sweeps.
    let jobs: Vec<(usize, u64)> = kinds
        .iter()
        .enumerate()
        .flat_map(|(ki, _)| seeds.iter().map(move |&s| (ki, s)))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Vec<RunOutcome>>> = kinds
        .iter()
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(ki, seed)) = jobs.get(i) else {
                    break;
                };
                let outcome = run_one(kinds[ki], seed);
                results[ki].lock().expect("no poisoned runs").push(outcome);
            });
        }
    });

    kinds
        .iter()
        .zip(results)
        .map(|(&kind, cell)| {
            let mut outcomes = cell.into_inner().expect("no poisoned runs");
            // Threads finish in arbitrary order; aggregate in seed order
            // so the rollup (and its serialized form) is deterministic.
            outcomes.sort_by_key(|o| o.seed);
            let metrics = outcomes.iter().filter_map(|o| o.metrics.as_ref()).fold(
                None::<MetricsSnapshot>,
                |acc, snap| match acc {
                    None => Some(snap.clone()),
                    Some(mut rollup) => {
                        rollup.merge(snap);
                        Some(rollup)
                    }
                },
            );
            let ok: Vec<&RunOutcome> = outcomes.iter().filter(|o| o.success).collect();
            StrategyStats {
                kind,
                success_rate: ok.len() as f64 / outcomes.len().max(1) as f64,
                moves: Summary::of_ints(&ok.iter().map(|o| o.moves).collect::<Vec<_>>()),
                bandwidth: Summary::of_ints(&ok.iter().map(|o| o.bandwidth).collect::<Vec<_>>()),
                pruned_bandwidth: Summary::of_ints(
                    &ok.iter().map(|o| o.pruned).collect::<Vec<_>>(),
                ),
                wall_ms: Summary::of(&ok.iter().map(|o| o.wall_ms).collect::<Vec<_>>()),
                metrics,
            }
        })
        .collect()
}

/// Builds the canonical per-figure results table: one row per
/// (sweep-value, strategy) with the paper's metrics plus the bound
/// columns.
#[must_use]
pub fn figure_table(param: &str) -> crate::table::Table {
    crate::table::Table::new([
        param,
        "strategy",
        "moves",
        "bandwidth",
        "pruned_bw",
        "success",
        "run_ms",
        "moves_lb",
        "bw_lb",
        "steiner_ub",
    ])
}

/// Appends one row per strategy for a single sweep point.
pub fn push_rows(
    table: &mut crate::table::Table,
    param_value: &str,
    stats: &[StrategyStats],
    bounds: &BoundsReport,
) {
    for s in stats {
        table.row([
            param_value.to_string(),
            s.kind.name().to_string(),
            s.moves.to_string(),
            s.bandwidth.to_string(),
            s.pruned_bandwidth.to_string(),
            format!("{:.0}%", s.success_rate * 100.0),
            s.wall_ms.to_string(),
            bounds.makespan_lower.to_string(),
            bounds.bandwidth_lower.to_string(),
            bounds
                .steiner_upper
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
        ]);
    }
}

/// Derives `count` per-run seeds from a master seed (documented so
/// experiments are reproducible from the single `--seed` flag).
#[must_use]
pub fn derive_seeds(master: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| master.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocd_core::scenario::single_file;
    use ocd_graph::generate::classic;

    #[test]
    fn evaluate_all_strategies_on_small_instance() {
        let instance = single_file(classic::cycle(6, 3, true), 8, 0);
        let kinds = StrategyKind::paper_five();
        let seeds = derive_seeds(7, 3);
        let stats = evaluate(&instance, &kinds, &seeds, &SimConfig::default());
        assert_eq!(stats.len(), 5);
        let bounds = bounds_of(&instance);
        for s in &stats {
            assert_eq!(s.success_rate, 1.0, "{} failed runs", s.kind);
            assert_eq!(s.moves.n, 3);
            assert_eq!(s.wall_ms.n, 3);
            assert!(s.wall_ms.min > 0.0, "{} reported a free run", s.kind);
            assert!(
                s.bandwidth.min >= bounds.bandwidth_lower as f64,
                "{} beat the lower bound",
                s.kind
            );
            assert!(
                s.pruned_bandwidth.mean <= s.bandwidth.mean,
                "{} pruning increased bandwidth",
                s.kind
            );
            assert!(s.moves.min >= bounds.makespan_lower as f64);
        }
        // The Steiner upper bound sandwiches pruned flooding heuristics'
        // bandwidth from... above is not guaranteed per-run, but it must
        // be at least the lower bound.
        assert!(bounds.steiner_upper.unwrap() >= bounds.bandwidth_lower);
    }

    #[test]
    fn evaluate_rolls_up_metrics_when_enabled() {
        let instance = single_file(classic::cycle(6, 3, true), 8, 0);
        let seeds = derive_seeds(9, 3);
        let config = SimConfig {
            metrics: true,
            ..Default::default()
        };
        let run = || evaluate(&instance, &[StrategyKind::Random], &seeds, &config);
        let stats = run();
        let rollup = stats[0].metrics.as_ref().expect("metrics enabled");
        // The rollup sums the per-run counters: 3 runs' steps.
        assert_eq!(
            rollup.counter("engine.steps"),
            Some((stats[0].moves.mean * 3.0).round() as u64)
        );
        assert_eq!(
            rollup.histogram("engine.step_moves").unwrap().sum,
            rollup.counter("engine.moves").unwrap()
        );
        // Despite the threaded fan-out, the rollup is deterministic.
        assert_eq!(
            run()[0].metrics.as_ref().unwrap().to_json(),
            rollup.to_json()
        );
        // And disabled metrics roll up to nothing.
        let plain = evaluate(
            &instance,
            &[StrategyKind::Random],
            &seeds,
            &SimConfig::default(),
        );
        assert!(plain[0].metrics.is_none());
    }

    #[test]
    fn record_run_artifact_is_self_certifying() {
        let instance = single_file(classic::cycle(6, 3, true), 8, 0);
        let record = record_run(&instance, StrategyKind::Local, &SimConfig::default(), 7);
        assert_eq!(record.medium, "ideal");
        assert_eq!(record.seed, 7);
        let replay = record.certify().expect("artifact re-validates standalone");
        assert!(replay.is_successful());
        // Round-trip through the wire format stays certifiable.
        let back = ocd_core::RunRecord::from_json(&record.to_json().unwrap()).unwrap();
        back.certify().unwrap();
    }

    #[test]
    fn derive_seeds_is_deterministic_and_distinct() {
        let a = derive_seeds(1, 4);
        let b = derive_seeds(1, 4);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert_ne!(derive_seeds(1, 2), derive_seeds(2, 2));
    }

    #[test]
    fn failed_runs_lower_success_rate() {
        // A step cap of 0 forces failure for strategies that need steps.
        let instance = single_file(classic::path(3, 1, true), 2, 0);
        let config = SimConfig {
            max_steps: 0,
            ..Default::default()
        };
        let stats = evaluate(&instance, &[StrategyKind::Random], &[1, 2], &config);
        assert_eq!(stats[0].success_rate, 0.0);
        assert_eq!(stats[0].moves.n, 0);
    }
}
