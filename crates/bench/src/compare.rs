//! Perf-trajectory snapshot comparison: the `bench compare` gate.
//!
//! Criterion runs under `OCD_BENCH_JSON=<FILE>` write a snapshot of
//! `{name, mean_ns, min_ns, max_ns}` rows; each PR commits one as
//! `BENCH_<n>.json` (hand-wrapped as `{"pr": n, "benches": [...]}` so
//! the provenance travels with the numbers). This module diffs two
//! snapshots by `mean_ns` per bench name and renders the delta table
//! CI prints; a delta above the tolerance on any shared name is a
//! **regression** and makes the gate exit nonzero.
//!
//! Both shapes parse — the bare array criterion emits and the
//! `{"pr", "benches"}` wrapper the committed files use — so
//! `ocd bench compare BENCH_8.json fresh.json` works without a
//! massaging step. Names present in only one snapshot are listed but
//! never gate: adding or retiring a bench is not a regression.

use serde::Deserialize;
use std::collections::BTreeMap;

/// One bench entry of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Criterion bench id, e.g. `simplex/solve_n16`.
    pub name: String,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: f64,
}

/// Per-name delta between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Bench name shared by both snapshots.
    pub name: String,
    /// Mean in the old snapshot, nanoseconds.
    pub old_mean_ns: f64,
    /// Mean in the new snapshot, nanoseconds.
    pub new_mean_ns: f64,
    /// Relative change: `new/old - 1` (+0.20 = 20% slower).
    pub change: f64,
}

/// Outcome of [`compare`]: the shared-name deltas plus the names each
/// side holds alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Deltas for every name in both snapshots, sorted by name.
    pub deltas: Vec<Delta>,
    /// Names only the old snapshot has (retired benches).
    pub only_old: Vec<String>,
    /// Names only the new snapshot has (new benches).
    pub only_new: Vec<String>,
    /// The regression threshold the comparison was run with.
    pub tolerance: f64,
}

/// A snapshot row as serialized (extra fields like `min_ns`/`max_ns`
/// are ignored, matching upstream serde's default).
#[derive(Debug, Clone, Deserialize)]
struct RawRow {
    name: String,
    mean_ns: f64,
}

/// The committed `{"pr": n, "benches": [...]}` wrapper shape.
#[derive(Debug, Clone, Deserialize)]
struct Wrapped {
    benches: Vec<RawRow>,
}

/// Parses a bench snapshot: either the bare JSON array criterion's
/// `OCD_BENCH_JSON` hook emits, or the committed
/// `{"pr": n, "benches": [...]}` wrapper.
///
/// # Errors
///
/// A message naming the malformed construct.
pub fn parse_snapshot(json: &str) -> Result<Vec<BenchRow>, String> {
    let rows = match serde_json::from_str::<Vec<RawRow>>(json) {
        Ok(rows) => rows,
        Err(array_err) => serde_json::from_str::<Wrapped>(json)
            .map(|w| w.benches)
            .map_err(|wrapped_err| {
                format!(
                    "snapshot is neither a bench array ({array_err}) nor a \
                     {{\"benches\": [...]}} object ({wrapped_err})"
                )
            })?,
    };
    rows.into_iter()
        .enumerate()
        .map(|(i, r)| {
            if !(r.mean_ns.is_finite() && r.mean_ns > 0.0) {
                return Err(format!(
                    "bench row {i} (`{}`) has non-positive mean_ns",
                    r.name
                ));
            }
            Ok(BenchRow {
                name: r.name,
                mean_ns: r.mean_ns,
            })
        })
        .collect()
}

/// Diffs two snapshots over the intersection of their bench names.
#[must_use]
pub fn compare(old: &[BenchRow], new: &[BenchRow], tolerance: f64) -> Comparison {
    let old_by_name: BTreeMap<&str, f64> =
        old.iter().map(|r| (r.name.as_str(), r.mean_ns)).collect();
    let new_by_name: BTreeMap<&str, f64> =
        new.iter().map(|r| (r.name.as_str(), r.mean_ns)).collect();
    let deltas = old_by_name
        .iter()
        .filter_map(|(&name, &old_mean_ns)| {
            let new_mean_ns = *new_by_name.get(name)?;
            Some(Delta {
                name: name.to_string(),
                old_mean_ns,
                new_mean_ns,
                change: new_mean_ns / old_mean_ns - 1.0,
            })
        })
        .collect();
    let only = |a: &BTreeMap<&str, f64>, b: &BTreeMap<&str, f64>| {
        a.keys()
            .filter(|k| !b.contains_key(*k))
            .map(|k| (*k).to_string())
            .collect()
    };
    Comparison {
        deltas,
        only_old: only(&old_by_name, &new_by_name),
        only_new: only(&new_by_name, &old_by_name),
        tolerance,
    }
}

impl Comparison {
    /// Deltas above the tolerance: the regressions that gate.
    #[must_use]
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.change > self.tolerance)
            .collect()
    }

    /// True when any shared bench regressed beyond the tolerance.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.change > self.tolerance)
    }

    /// The human-readable delta table CI prints: one row per shared
    /// name with old/new means and the signed percentage change,
    /// regressions flagged, improvements marked, and a trailing
    /// summary line.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let name_width = self
            .deltas
            .iter()
            .map(|d| d.name.len())
            .chain(["bench".len()])
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>14}  {:>14}  {:>8}",
            "bench", "old mean_ns", "new mean_ns", "change"
        );
        for d in &self.deltas {
            let flag = if d.change > self.tolerance {
                "  REGRESSION"
            } else if d.change < -self.tolerance {
                "  improved"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<name_width$}  {:>14.1}  {:>14.1}  {:>+7.1}%{}",
                d.name,
                d.old_mean_ns,
                d.new_mean_ns,
                d.change * 100.0,
                flag
            );
        }
        for name in &self.only_old {
            let _ = writeln!(out, "{name:<name_width$}  (only in old snapshot)");
        }
        for name in &self.only_new {
            let _ = writeln!(out, "{name:<name_width$}  (only in new snapshot)");
        }
        let regressions = self.regressions().len();
        let _ = writeln!(
            out,
            "{} benches compared, {} regression{} above {:.0}% tolerance",
            self.deltas.len(),
            regressions,
            if regressions == 1 { "" } else { "s" },
            self.tolerance * 100.0
        );
        out
    }
}

/// Loads both snapshot files, compares them, and returns the rendered
/// table plus the gate verdict — the shared implementation behind the
/// `bench_compare` binary and `ocd bench compare`.
///
/// # Errors
///
/// A message naming the unreadable or malformed file.
pub fn compare_files(
    old_path: &str,
    new_path: &str,
    tolerance: f64,
) -> Result<(String, bool), String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    let old = parse_snapshot(&read(old_path)?).map_err(|e| format!("{old_path}: {e}"))?;
    let new = parse_snapshot(&read(new_path)?).map_err(|e| format!("{new_path}: {e}"))?;
    if old.is_empty() {
        return Err(format!("{old_path}: snapshot has no bench rows"));
    }
    let cmp = compare(&old, &new, tolerance);
    Ok((cmp.render(), cmp.has_regressions()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, mean: f64) -> BenchRow {
        BenchRow {
            name: name.into(),
            mean_ns: mean,
        }
    }

    #[test]
    fn parses_both_snapshot_shapes() {
        let bare = r#"[{"name": "a/b", "mean_ns": 120.5, "min_ns": 100.0, "max_ns": 150.0}]"#;
        let wrapped = r#"{"pr": 10, "benches": [{"name": "a/b", "mean_ns": 120.5}]}"#;
        assert_eq!(
            parse_snapshot(bare).unwrap(),
            parse_snapshot(wrapped).unwrap()
        );
        assert_eq!(parse_snapshot(bare).unwrap()[0].name, "a/b");
    }

    #[test]
    fn malformed_snapshots_name_the_problem() {
        assert!(parse_snapshot("42").unwrap_err().contains("array"));
        assert!(parse_snapshot(r#"{"pr": 1}"#)
            .unwrap_err()
            .contains("benches"));
        assert!(parse_snapshot(r#"[{"mean_ns": 1.0}]"#)
            .unwrap_err()
            .contains("name"));
        assert!(parse_snapshot(r#"[{"name": "x", "mean_ns": 0.0}]"#)
            .unwrap_err()
            .contains("non-positive"));
    }

    #[test]
    fn equal_snapshots_pass_and_injected_regression_gates() {
        // The deliberate-regression proof of the nonzero exit path: a
        // >15% mean_ns inflation on one shared bench must gate at the
        // default tolerance, while identical inputs must not.
        let old = vec![row("engine/step", 1000.0), row("bnb/solve", 5000.0)];
        let same = compare(&old, &old, 0.15);
        assert!(!same.has_regressions());
        assert!(same.regressions().is_empty());

        let mut slower = old.clone();
        slower[1].mean_ns *= 1.16; // injected 16% regression
        let gated = compare(&old, &slower, 0.15);
        assert!(gated.has_regressions());
        let regs = gated.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "bnb/solve");
        assert!(gated.render().contains("REGRESSION"));

        // 15% exactly is within tolerance (strictly-above gates).
        let mut borderline = old.clone();
        borderline[1].mean_ns *= 1.15;
        assert!(!compare(&old, &borderline, 0.15).has_regressions());
    }

    #[test]
    fn improvements_and_disjoint_names_never_gate() {
        let old = vec![row("a", 1000.0), row("gone", 10.0)];
        let new = vec![row("a", 200.0), row("fresh", 10.0)];
        let cmp = compare(&old, &new, 0.15);
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.only_old, vec!["gone".to_string()]);
        assert_eq!(cmp.only_new, vec!["fresh".to_string()]);
        let table = cmp.render();
        assert!(table.contains("improved"));
        assert!(table.contains("only in old"));
        assert!(table.contains("only in new"));
    }
}
