//! Criterion benchmarks of the exact-solver hot path rebuilt in this
//! refactor: the sparse revised simplex (cold and warm-started, against
//! the retained dense tableau as the baseline), and the warm-started
//! branch-and-bound on the §3.4 time-indexed IP and the Theorem-5
//! reduction. These are the numbers `BENCH_8.json` snapshots and CI
//! re-measures via `OCD_BENCH_JSON`.

use criterion::{criterion_group, criterion_main, Criterion};
use ocd_core::{Instance, NodeBudgets, TokenSet};
use ocd_graph::generate::{gnp, GnpConfig};
use ocd_graph::DiGraph;
use ocd_lp::{MipOptions, Problem};
use ocd_solver::ip::{ip_problem, min_bandwidth_for_horizon};
use ocd_solver::reduction::focd_from_dominating_set;
use rand::prelude::*;

/// The `table_exact` instance family at benchmark scale: connected
/// `G(n, 2 ln n / n)`, unit arc capacities, 2 parts from vertex 0,
/// optionally under unit uplink budgets.
fn gnp_instance(n: usize, uplink_limited: bool) -> Instance {
    let mut rng = StdRng::seed_from_u64(2005 ^ n as u64);
    let config = GnpConfig {
        capacity: 1..=1,
        ..GnpConfig::paper(n)
    };
    let g = gnp(&config, &mut rng);
    let mut builder = Instance::builder(g, 2)
        .have_set(0, TokenSet::full(2))
        .want_all_everywhere();
    if uplink_limited {
        builder = builder.node_budgets(NodeBudgets::uplink_only(n, 1));
    }
    builder.build().expect("vertex 0 holds every part")
}

/// §3.4 IP relaxation of the `G(n, p)` broadcast at the given horizon.
fn gnp_lp(n: usize, horizon: usize) -> Problem {
    ip_problem(&gnp_instance(n, false), horizon).expect("horizon ≥ 1")
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group.sample_size(10);
    for &(n, horizon) in &[(16usize, 3usize), (32, 4)] {
        let problem = gnp_lp(n, horizon);
        group.bench_function(format!("sparse_cold/gnp{n}_h{horizon}"), |b| {
            b.iter(|| problem.solve_lp().expect("relaxation feasible"));
        });
        // Warm restart from the optimal basis of the same bounds: the
        // per-node cost inside branch-and-bound (minus the bound flip).
        let lower: Vec<f64> = (0..problem.num_vars()).map(|_| 0.0).collect();
        let upper: Vec<f64> = (0..problem.num_vars()).map(|_| 1.0).collect();
        let (_, basis, _) = problem
            .solve_lp_with_basis(&lower, &upper, None)
            .expect("relaxation feasible");
        group.bench_function(format!("sparse_warm/gnp{n}_h{horizon}"), |b| {
            b.iter(|| {
                problem
                    .solve_lp_with_basis(&lower, &upper, Some(&basis))
                    .expect("warm restart feasible")
            });
        });
    }
    // Dense reference at the largest size it can stomach.
    let small = gnp_lp(8, 2);
    group.bench_function("dense_cold/gnp8_h2", |b| {
        b.iter(|| small.solve_lp_dense().expect("relaxation feasible"));
    });
    group.finish();
}

fn bench_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnb");
    group.sample_size(10);
    let feasibility = MipOptions {
        absolute_gap: 1e12,
        ..MipOptions::default()
    };

    // Budgeted broadcast at its (certified) optimal horizon: the
    // feasibility MILP that anchors `table_exact`'s uplink-1 rows.
    let budgeted = gnp_instance(8, true);
    group.bench_function("feasibility/gnp8_uplink1_h5", |b| {
        b.iter(|| {
            min_bandwidth_for_horizon(&budgeted, 5, &feasibility)
                .expect("simplex healthy")
                .expect("horizon 5 feasible")
        });
    });

    // Theorem-5 reduction decided at horizon 2: the `reduce-ds` path.
    let mut g = DiGraph::with_nodes(10);
    for u in 0..10usize {
        for v in (u + 1)..10 {
            if (u * 7 + v * 3) % 4 == 0 {
                g.add_edge_symmetric(g.node(u), g.node(v), 1).unwrap();
            }
        }
    }
    for v in 3..10usize {
        let covered = (0..3).any(|c| g.find_edge(g.node(c), g.node(v)).is_some());
        if !covered {
            g.add_edge_symmetric(g.node(v % 3), g.node(v), 1).unwrap();
        }
    }
    let (reduced, _) = focd_from_dominating_set(&g, 3);
    group.bench_function("reduction/ds_n10_k3", |b| {
        b.iter(|| {
            min_bandwidth_for_horizon(&reduced, 2, &feasibility)
                .expect("simplex healthy")
                .expect("first 3 vertices dominate by construction")
        });
    });

    // Bandwidth-optimal mode (tight gap) on the unbudgeted broadcast:
    // exercises the post-incumbent best-first phase, not just the dive.
    let free = gnp_instance(8, false);
    group.bench_function("bandwidth_opt/gnp8_h3", |b| {
        b.iter(|| {
            min_bandwidth_for_horizon(&free, 3, &MipOptions::default())
                .expect("simplex healthy")
                .expect("horizon 3 feasible")
        });
    });
    group.finish();
}

criterion_group!(solver, bench_simplex, bench_bnb);
criterion_main!(solver);
