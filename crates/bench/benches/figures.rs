//! Criterion-sized kernels of every paper figure: one representative
//! configuration per figure, so `cargo bench` exercises the full
//! experiment pipeline end to end. The full sweeps live in the
//! `fig*_*` binaries (`cargo run --release -p ocd-bench --bin …`).

use criterion::{criterion_group, criterion_main, Criterion};
use ocd_bench::runner::{derive_seeds, evaluate};
use ocd_core::scenario::{figure_one, multi_file, multi_sender, receiver_density, single_file};
use ocd_graph::generate::{paper_random, transit_stub, TransitStubConfig};
use ocd_heuristics::{SimConfig, StrategyKind};
use ocd_lp::MipOptions;
use ocd_solver::bnb::{decide_focd, BnbOptions};
use ocd_solver::ip::pareto_frontier;
use ocd_solver::reduction::focd_from_dominating_set;
use rand::prelude::*;

fn kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_kernels");
    group.sample_size(10);
    let kinds = [StrategyKind::Random, StrategyKind::Global];
    let config = SimConfig::default();

    group.bench_function("fig1_pareto_frontier", |b| {
        let instance = figure_one();
        b.iter(|| pareto_frontier(&instance, 1..=4, &MipOptions::default()).unwrap());
    });

    group.bench_function("fig2_size_random_n40", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let instance = single_file(paper_random(40, &mut rng), 40, 0);
        let seeds = derive_seeds(2, 2);
        b.iter(|| evaluate(&instance, &kinds, &seeds, &config));
    });

    group.bench_function("fig3_transit_stub_n40", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let ts = TransitStubConfig::paper_sized(40);
        let instance = single_file(transit_stub(&ts, &mut rng), 40, 0);
        let seeds = derive_seeds(3, 2);
        b.iter(|| evaluate(&instance, &kinds, &seeds, &config));
    });

    group.bench_function("fig4_density_half", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let topo = paper_random(40, &mut rng);
        let instance = receiver_density(topo, 40, 0, 0.5, &mut rng);
        let seeds = derive_seeds(4, 2);
        b.iter(|| evaluate(&instance, &kinds, &seeds, &config));
    });

    group.bench_function("fig5_multi_file_k4", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let instance = multi_file(paper_random(40, &mut rng), 64, 4, 0);
        let seeds = derive_seeds(5, 2);
        b.iter(|| evaluate(&instance, &kinds, &seeds, &config));
    });

    group.bench_function("fig6_multi_sender_k4", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let topo = paper_random(40, &mut rng);
        let instance = multi_sender(topo, 64, 4, &mut rng);
        let seeds = derive_seeds(6, 2);
        b.iter(|| evaluate(&instance, &kinds, &seeds, &config));
    });

    group.bench_function("fig7_reduction_p5_k2", |b| {
        let g = ocd_graph::generate::classic::path(5, 1, true);
        b.iter(|| {
            let (instance, _) = focd_from_dominating_set(&g, 2);
            decide_focd(&instance, 2, &BnbOptions::default())
                .unwrap()
                .is_some()
        });
    });

    group.finish();
}

criterion_group!(figures, kernels);
criterion_main!(figures);
