//! Criterion micro-benchmarks of the suite's hot paths: token-set
//! algebra, schedule replay/pruning, bounds, one planning step of each
//! heuristic, and the exact solvers on small instances.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ocd_core::knowledge::AggregateKnowledge;
use ocd_core::scenario::{figure_one, single_file};
use ocd_core::{bounds, prune, Token, TokenSet};
use ocd_graph::generate::{classic, paper_random};
use ocd_heuristics::{simulate, SimConfig, StrategyKind, WorldView};
use ocd_lp::MipOptions;
use ocd_solver::bnb::{solve_focd, BnbOptions};
use ocd_solver::ip::min_bandwidth_for_horizon;
use rand::prelude::*;

fn bench_tokenset(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenset");
    for &m in &[64usize, 512, 4096] {
        let a = TokenSet::from_tokens(m, (0..m).step_by(3).map(Token::new));
        let b = TokenSet::from_tokens(m, (0..m).step_by(5).map(Token::new));
        group.bench_with_input(BenchmarkId::new("difference_len", m), &m, |bench, _| {
            bench.iter(|| std::hint::black_box(a.difference_len(&b)));
        });
        group.bench_with_input(BenchmarkId::new("union", m), &m, |bench, _| {
            bench.iter(|| std::hint::black_box(a.union(&b)));
        });
        group.bench_with_input(BenchmarkId::new("iterate", m), &m, |bench, _| {
            bench.iter(|| a.iter().map(Token::index).sum::<usize>());
        });
    }
    group.finish();
}

fn medium_report() -> (ocd_core::Instance, ocd_core::Schedule) {
    let mut rng = StdRng::seed_from_u64(5);
    let topology = paper_random(60, &mut rng);
    let instance = single_file(topology, 60, 0);
    let mut strategy = StrategyKind::Random.build();
    let report = simulate(&instance, strategy.as_mut(), &SimConfig::default(), &mut rng);
    assert!(report.success);
    (instance, report.schedule)
}

fn bench_schedule_ops(c: &mut Criterion) {
    let (instance, schedule) = medium_report();
    let mut group = c.benchmark_group("schedule");
    group.bench_function("replay_validate", |b| {
        b.iter(|| ocd_core::validate::replay(&instance, &schedule).unwrap());
    });
    group.bench_function("prune", |b| {
        b.iter(|| prune::prune(&instance, &schedule));
    });
    group.bench_function("bandwidth_lower_bound", |b| {
        b.iter(|| bounds::bandwidth_lower_bound(&instance));
    });
    group.bench_function("makespan_lower_bound", |b| {
        b.iter(|| bounds::makespan_lower_bound(&instance));
    });
    group.finish();
}

fn bench_strategy_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let topology = paper_random(100, &mut rng);
    let instance = single_file(topology, 100, 0);
    let possession: Vec<TokenSet> = instance.have_all().to_vec();
    let aggregates = AggregateKnowledge::compute(100, &possession, instance.want_all());
    let mut group = c.benchmark_group("strategy_first_step_n100_m100");
    for kind in StrategyKind::paper_five() {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let mut s = kind.build();
                    s.reset(&instance);
                    (s, StdRng::seed_from_u64(1))
                },
                |(mut s, mut step_rng)| {
                    let view = WorldView {
                        instance: &instance,
                        possession: &possession,
                        aggregates: &aggregates,
                        step: 0,
                        capacities: None,
                    };
                    std::hint::black_box(s.plan_step(&view, &mut step_rng))
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_exact_solvers(c: &mut Criterion) {
    let instance = figure_one();
    let mut group = c.benchmark_group("exact_small");
    group.sample_size(20);
    group.bench_function("bnb_focd_figure1", |b| {
        b.iter(|| solve_focd(&instance, &BnbOptions::default()).unwrap());
    });
    group.bench_function("ip_eocd_figure1_h3", |b| {
        b.iter(|| {
            min_bandwidth_for_horizon(&instance, 3, &MipOptions::default())
                .unwrap()
                .unwrap()
        });
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.bench_function("paper_random_200", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| paper_random(200, &mut rng),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("steiner_star_200", |b| {
        let g = classic::star(200, 3, false);
        let sources = [g.node(0)];
        let terminals: Vec<_> = (1..200).map(|i| g.node(i)).collect();
        b.iter(|| ocd_graph::algo::steiner_tree_approx(&g, &sources, &terminals).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenset,
    bench_schedule_ops,
    bench_strategy_step,
    bench_exact_solvers,
    bench_generators
);
criterion_main!(benches);
