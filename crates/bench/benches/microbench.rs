//! Criterion micro-benchmarks of the suite's hot paths: token-set
//! algebra, schedule replay/pruning, bounds, one planning step of each
//! heuristic, and the exact solvers on small instances.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ocd_core::knowledge::AggregateKnowledge;
use ocd_core::rlnc::RlncInstance;
use ocd_core::scenario::{figure_one, single_file};
use ocd_core::{bounds, prune, Token, TokenSet};
use ocd_graph::generate::{classic, paper_random};
use ocd_heuristics::{simulate, SimConfig, StrategyKind, WorldView};
use ocd_lp::MipOptions;
use ocd_net::{run_coded_swarm, run_swarm, FaultPlan, NetConfig, NetPolicy};
use ocd_solver::bnb::{solve_focd, BnbOptions};
use ocd_solver::ip::min_bandwidth_for_horizon;
use rand::prelude::*;

fn bench_tokenset(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenset");
    for &m in &[64usize, 512, 4096] {
        let a = TokenSet::from_tokens(m, (0..m).step_by(3).map(Token::new));
        let b = TokenSet::from_tokens(m, (0..m).step_by(5).map(Token::new));
        group.bench_with_input(BenchmarkId::new("difference_len", m), &m, |bench, _| {
            bench.iter(|| std::hint::black_box(a.difference_len(&b)));
        });
        group.bench_with_input(BenchmarkId::new("union", m), &m, |bench, _| {
            bench.iter(|| std::hint::black_box(a.union(&b)));
        });
        group.bench_with_input(BenchmarkId::new("iterate", m), &m, |bench, _| {
            bench.iter(|| a.iter().map(Token::index).sum::<usize>());
        });
    }
    group.finish();
}

fn medium_report() -> (ocd_core::Instance, ocd_core::Schedule) {
    let mut rng = StdRng::seed_from_u64(5);
    let topology = paper_random(60, &mut rng);
    let instance = single_file(topology, 60, 0);
    let mut strategy = StrategyKind::Random.build();
    let report = simulate(
        &instance,
        strategy.as_mut(),
        &SimConfig::default(),
        &mut rng,
    );
    assert!(report.success);
    (instance, report.schedule)
}

fn bench_schedule_ops(c: &mut Criterion) {
    let (instance, schedule) = medium_report();
    let mut group = c.benchmark_group("schedule");
    group.bench_function("replay_validate", |b| {
        b.iter(|| ocd_core::validate::replay(&instance, &schedule).unwrap());
    });
    group.bench_function("prune", |b| {
        b.iter(|| prune::prune(&instance, &schedule));
    });
    group.bench_function("bandwidth_lower_bound", |b| {
        b.iter(|| bounds::bandwidth_lower_bound(&instance));
    });
    group.bench_function("makespan_lower_bound", |b| {
        b.iter(|| bounds::makespan_lower_bound(&instance));
    });
    group.finish();
}

fn bench_strategy_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let topology = paper_random(100, &mut rng);
    let instance = single_file(topology, 100, 0);
    let possession: Vec<TokenSet> = instance.have_all().to_vec();
    let aggregates = AggregateKnowledge::compute(100, &possession, instance.want_all());
    let mut group = c.benchmark_group("strategy_first_step_n100_m100");
    for kind in StrategyKind::paper_five() {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let mut s = kind.build();
                    s.reset(&instance);
                    (s, StdRng::seed_from_u64(1))
                },
                |(mut s, mut step_rng)| {
                    let view = WorldView {
                        instance: &instance,
                        possession: &possession,
                        aggregates: &aggregates,
                        step: 0,
                        capacities: None,
                    };
                    std::hint::black_box(s.plan_step(&view, &mut step_rng))
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Sends exactly one token from the seeder to one neighbour per step,
/// cycling through (arc, token) pairs. Planning is O(1), so a run's
/// cost is almost entirely the engine's own step-loop bookkeeping —
/// exactly what the incremental-aggregates rework targets.
struct DripFeed {
    source: usize,
    out_edges: Vec<ocd_graph::EdgeId>,
}

impl DripFeed {
    fn new() -> Self {
        DripFeed {
            source: 0,
            out_edges: Vec::new(),
        }
    }
}

impl ocd_heuristics::Strategy for DripFeed {
    fn name(&self) -> &'static str {
        "drip-feed"
    }
    fn tier(&self) -> ocd_heuristics::KnowledgeTier {
        ocd_heuristics::KnowledgeTier::Global
    }
    fn reset(&mut self, instance: &ocd_core::Instance) {
        self.source = instance
            .have_all()
            .iter()
            .position(|h| !h.is_empty())
            .expect("instance has a seeder");
        let g = instance.graph();
        self.out_edges = g
            .edge_ids()
            .filter(|&e| g.edge(e).src.index() == self.source)
            .collect();
    }
    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Vec<(ocd_graph::EdgeId, TokenSet)> {
        let m = view.instance.num_tokens();
        let edge = self.out_edges[view.step % self.out_edges.len()];
        let token = Token::new((view.step / self.out_edges.len()) % m);
        vec![(edge, TokenSet::from_tokens(m, [token]))]
    }
}

/// Wraps a strategy and redoes, in every `plan_step`, the three full
/// O(n·m) rescans the engine performed per step before the incremental
/// aggregates landed: `AggregateKnowledge::compute`, the
/// `remaining_need` sum, and the per-vertex completion check.
/// Benchmarking `simulate` with and without this wrapper isolates the
/// cost the incremental counters removed.
struct RecomputeEveryStep<S>(S);

impl<S: ocd_heuristics::Strategy> ocd_heuristics::Strategy for RecomputeEveryStep<S> {
    fn name(&self) -> &'static str {
        "recompute-every-step"
    }
    fn tier(&self) -> ocd_heuristics::KnowledgeTier {
        self.0.tier()
    }
    fn reset(&mut self, instance: &ocd_core::Instance) {
        self.0.reset(instance);
    }
    fn plan_step(
        &mut self,
        view: &WorldView<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Vec<(ocd_graph::EdgeId, TokenSet)> {
        let want = view.instance.want_all();
        std::hint::black_box(AggregateKnowledge::compute(
            view.instance.num_tokens(),
            view.possession,
            want,
        ));
        std::hint::black_box(
            want.iter()
                .zip(view.possession)
                .map(|(w, p)| w.difference_len(p) as u64)
                .sum::<u64>(),
        );
        std::hint::black_box(
            want.iter()
                .zip(view.possession)
                .filter(|(w, p)| w.is_subset(p))
                .count(),
        );
        self.0.plan_step(view, rng)
    }
    fn may_idle(&self, step: usize) -> bool {
        self.0.may_idle(step)
    }
}

fn bench_engine_step_loop(c: &mut Criterion) {
    // The ISSUE's acceptance workload: 200 vertices, 256 tokens. The
    // drip-feed strategy keeps planning and delivery cost negligible, so
    // the two arms differ only in the engine-side per-step work.
    let mut rng = StdRng::seed_from_u64(11);
    let topology = paper_random(200, &mut rng);
    let instance = single_file(topology, 256, 0);
    let config = SimConfig {
        max_steps: 256,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("engine_step_loop_n200_m256");
    group.sample_size(10);
    group.bench_function("incremental", |b| {
        b.iter_batched(
            || (DripFeed::new(), StdRng::seed_from_u64(1)),
            |(mut s, mut run_rng)| {
                let report = simulate(&instance, &mut s, &config, &mut run_rng);
                assert_eq!(report.steps, 256);
                report.bandwidth
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("recompute_reference", |b| {
        b.iter_batched(
            || {
                (
                    RecomputeEveryStep(DripFeed::new()),
                    StdRng::seed_from_u64(1),
                )
            },
            |(mut s, mut run_rng)| {
                let report = simulate(&instance, &mut s, &config, &mut run_rng);
                assert_eq!(report.steps, 256);
                report.bandwidth
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The three transmission media on the same n=200/m=256 drip-feed
/// workload as `engine_step_loop`: the run cost is dominated by the
/// engine's per-step bookkeeping, so the arms expose how much each
/// medium adds on top of the ideal (static-capacity) loop. The
/// physical-underlay arm uses an identity mapping (every overlay arc
/// rides its own dedicated physical arc), so admission control runs at
/// full tilt without changing the schedule.
fn bench_engine_mediums(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let topology = paper_random(200, &mut rng);
    let instance = single_file(topology.clone(), 256, 0);
    let config = SimConfig {
        max_steps: 256,
        ..SimConfig::default()
    };
    let hosts: Vec<ocd_graph::NodeId> = topology.nodes().collect();
    let underlay = ocd_graph::underlay::Underlay::new(topology.clone(), hosts).unwrap();
    let mapping = underlay.map_overlay(&topology).unwrap();

    let mut group = c.benchmark_group("engine_mediums_n200_m256");
    group.sample_size(10);
    group.bench_function("ideal", |b| {
        b.iter_batched(
            || (DripFeed::new(), StdRng::seed_from_u64(1)),
            |(mut s, mut run_rng)| {
                let report = simulate(&instance, &mut s, &config, &mut run_rng);
                assert_eq!(report.steps, 256);
                report.bandwidth
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("dynamic_cross_traffic", |b| {
        b.iter_batched(
            || {
                (
                    DripFeed::new(),
                    ocd_heuristics::dynamics::CrossTraffic::new(0.5),
                    StdRng::seed_from_u64(1),
                )
            },
            |(mut s, mut d, mut run_rng)| {
                let outcome = ocd_heuristics::simulate_dynamic(
                    &instance,
                    &mut s,
                    &mut d,
                    &config,
                    &mut run_rng,
                );
                assert_eq!(outcome.report.steps, 256);
                outcome.report.bandwidth
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("physical_underlay", |b| {
        b.iter_batched(
            || (DripFeed::new(), StdRng::seed_from_u64(1)),
            |(mut s, mut run_rng)| {
                let outcome = ocd_heuristics::simulate_underlay(
                    &instance,
                    &mut s,
                    &topology,
                    &mapping,
                    &config,
                    &mut run_rng,
                );
                assert_eq!(outcome.report.steps, 256);
                outcome.report.bandwidth
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The asynchronous swarm runtime end to end: one ideal-mode run and
/// one degraded run (latency, loss, retries) on the same n=60/m=64
/// instance. The spread between the arms is the cost of the
/// retry/timeout machinery; the `net.tick` span phases break the same
/// runs down further under `ocd trace`-style profiling.
fn bench_net_swarm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let topology = paper_random(60, &mut rng);
    let instance = single_file(topology, 64, 0);
    let mut group = c.benchmark_group("net_swarm_n60_m64");
    group.sample_size(10);
    let ideal = NetConfig::default();
    group.bench_function("ideal", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut run_rng| {
                let report = run_swarm(&instance, &ideal, &FaultPlan::none(), &mut run_rng);
                assert!(report.success);
                report.ticks
            },
            BatchSize::SmallInput,
        );
    });
    let degraded = NetConfig {
        policy: NetPolicy::Local,
        latency: 2,
        loss: 0.05,
        ..NetConfig::default()
    };
    group.bench_function("degraded_lossy", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut run_rng| {
                let report = run_swarm(&instance, &degraded, &FaultPlan::none(), &mut run_rng);
                assert!(report.success);
                report.ticks
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The RLNC coded swarm: GF(2^8) row reduction dominates, so this
/// group tracks the coding hot path (`coded.deliver_data` in span
/// terms) rather than protocol bookkeeping.
fn bench_coded_swarm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let topology = paper_random(24, &mut rng);
    let instance = RlncInstance::single_source(topology, 16, 64, 0);
    let mut group = c.benchmark_group("coded_swarm_n24_k16");
    group.sample_size(10);
    let config = NetConfig {
        policy: NetPolicy::Local,
        ..NetConfig::default()
    };
    group.bench_function("pull_ideal", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut run_rng| {
                let report = run_coded_swarm(&instance, &config, 1.0, &mut run_rng);
                assert!(report.success);
                report.ticks
            },
            BatchSize::SmallInput,
        );
    });
    let lossy = NetConfig {
        policy: NetPolicy::Local,
        loss: 0.05,
        ..NetConfig::default()
    };
    group.bench_function("pull_lossy_redundancy", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut run_rng| {
                let report = run_coded_swarm(&instance, &lossy, 1.5, &mut run_rng);
                assert!(report.success);
                report.ticks
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_exact_solvers(c: &mut Criterion) {
    let instance = figure_one();
    let mut group = c.benchmark_group("exact_small");
    group.sample_size(20);
    group.bench_function("bnb_focd_figure1", |b| {
        b.iter(|| solve_focd(&instance, &BnbOptions::default()).unwrap());
    });
    group.bench_function("ip_eocd_figure1_h3", |b| {
        b.iter(|| {
            min_bandwidth_for_horizon(&instance, 3, &MipOptions::default())
                .unwrap()
                .unwrap()
        });
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.bench_function("paper_random_200", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| paper_random(200, &mut rng),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("steiner_star_200", |b| {
        let g = classic::star(200, 3, false);
        let sources = [g.node(0)];
        let terminals: Vec<_> = (1..200).map(|i| g.node(i)).collect();
        b.iter(|| ocd_graph::algo::steiner_tree_approx(&g, &sources, &terminals).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenset,
    bench_schedule_ops,
    bench_strategy_step,
    bench_engine_step_loop,
    bench_engine_mediums,
    bench_net_swarm,
    bench_coded_swarm,
    bench_exact_solvers,
    bench_generators
);
criterion_main!(benches);
