//! Vendored stand-in for `serde_derive`, written against the vendored
//! `serde`'s value-tree data model.
//!
//! Supports exactly what this workspace derives on: non-generic structs
//! with named fields (serialized as maps) and single-field tuple
//! structs (newtypes, serialized transparently as their inner value —
//! which also subsumes `#[serde(transparent)]`). Anything else is a
//! compile error, loudly, rather than silently wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field of the deriving struct.
struct FieldSpec {
    name: String,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`;
    /// when it returns true for the field, serialization omits it.
    /// (Deserialization already treats missing fields as `Value::Null`,
    /// which covers `Option` and `#[serde(default)]`-style round-trips.)
    skip_if: Option<String>,
}

/// What we need to know about the deriving type.
struct StructShape {
    name: String,
    /// `Some(fields)` for named-field structs, `None` for newtypes.
    fields: Option<Vec<FieldSpec>>,
}

/// Parses the struct item, skipping attributes, visibility, and field
/// types (only names matter — the generated code lets inference pick
/// the `Serialize`/`Deserialize` impls for each field's type).
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut tokens = input.into_iter().peekable();

    // Item-level attributes (`#[serde(transparent)]`, doc comments, …)
    // and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" => {}
        other => {
            return Err(format!(
                "vendored serde_derive only supports structs, found {other:?}"
            ))
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            Err(format!("generic struct {name} is not supported"))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(StructShape {
            name,
            fields: Some(parse_named_fields(g.stream())?),
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = tuple_arity(g.stream());
            if arity == 1 {
                Ok(StructShape { name, fields: None })
            } else {
                Err(format!(
                    "tuple struct {name} has {arity} fields; only newtypes are supported"
                ))
            }
        }
        other => Err(format!("expected struct body for {name}, found {other:?}")),
    }
}

/// Extracts `skip_serializing_if = "path"` from the argument stream of
/// a `#[serde(...)]` attribute, if present.
fn parse_skip_if(args: TokenStream) -> Option<String> {
    let mut tokens = args.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        let TokenTree::Ident(i) = &tree else { continue };
        if i.to_string() != "skip_serializing_if" {
            continue;
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
            _ => return None,
        }
        if let Some(TokenTree::Literal(lit)) = tokens.next() {
            let s = lit.to_string();
            return Some(s.trim_matches('"').to_string());
        }
        return None;
    }
    None
}

/// Extracts field names from `{ name: Type, … }`, reading per-field
/// `#[serde(...)]` attributes, skipping others and visibility, and
/// skipping types with angle-bracket depth tracking (`Vec<(A, B)>`
/// contains no top-level comma; a hypothetical `Map<K, V>` does, inside
/// `<…>`).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<FieldSpec>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Field attributes (capturing serde ones) and visibility.
        let mut skip_if = None;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(attr)) = tokens.next() {
                        // `[serde(args)]`: first ident names the
                        // attribute, the parenthesized group its args.
                        let mut inner = attr.stream().into_iter();
                        if matches!(inner.next(), Some(TokenTree::Ident(i)) if i.to_string() == "serde")
                        {
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                if let Some(pred) = parse_skip_if(args.stream()) {
                                    skip_if = Some(pred);
                                }
                            }
                        }
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            return Err(format!("expected field name, found {tree:?}"));
        };
        fields.push(FieldSpec {
            name: field.to_string(),
            skip_if,
        });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tree in tokens.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Counts top-level comma-separated fields of a tuple-struct body.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                saw_token = false;
                continue;
            }
            _ => {}
        }
        if !saw_token {
            arity += 1;
            saw_token = true;
        }
    }
    arity
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error")
}

/// Derives `serde::Serialize` (named structs → maps, newtypes →
/// transparent).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let name = &shape.name;
    let body = match &shape.fields {
        None => "::serde::ser::Serialize::serialize(&self.0, serializer)".to_string(),
        Some(fields) => {
            let mut pushes = String::new();
            for spec in fields {
                let f = &spec.name;
                let push = format!(
                    "fields.push(({f:?}.to_string(), \
                     ::serde::ser::to_value(&self.{f})\
                     .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?));\n"
                );
                match &spec.skip_if {
                    Some(pred) => pushes.push_str(&format!("if !{pred}(&self.{f}) {{\n{push}}}\n")),
                    None => pushes.push_str(&push),
                }
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, \
                 ::serde::value::Value)> = ::std::vec::Vec::with_capacity({});\n\
                 {pushes}\
                 ::serde::ser::Serializer::serialize_value(\
                 serializer, ::serde::value::Value::Map(fields))",
                fields.len()
            )
        }
    };
    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S)\n\
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (named structs ← maps, newtypes ←
/// transparent).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let name = &shape.name;
    let body = match &shape.fields {
        None => format!("::serde::de::Deserialize::deserialize(deserializer).map({name})"),
        Some(fields) => {
            let mut inits = String::new();
            for spec in fields {
                let f = &spec.name;
                inits.push_str(&format!(
                    "{f}: ::serde::de::take_field(&mut map, {name:?}, {f:?})\
                     .map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?,\n"
                ));
            }
            format!(
                "match ::serde::de::Deserializer::take_value(deserializer)? {{\n\
                 ::serde::value::Value::Map(mut map) => {{\n\
                 let _ = &mut map;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})\n}}\n\
                 other => ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"expected map for struct {name}, got {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D)\n\
         -> ::core::result::Result<Self, D::Error> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
