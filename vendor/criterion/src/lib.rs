//! Vendored, dependency-free stand-in for `criterion`: a minimal
//! wall-clock benchmark harness with the same source-level API surface
//! this workspace uses ([`Criterion::benchmark_group`],
//! `bench_function`, `bench_with_input`, [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros).
//!
//! Each benchmark is timed with [`std::time::Instant`]: a short warm-up
//! estimates the per-iteration cost, then `sample_size` samples are
//! collected and the mean/min/max per-iteration times are printed.
//! Under `cargo test` (Cargo passes `--test` to `harness = false`
//! bench targets) every benchmark runs exactly one iteration as a
//! smoke test, like upstream.
//!
//! Setting `OCD_BENCH_JSON=<path>` makes [`Criterion::final_summary`]
//! additionally write every measurement as a JSON array of
//! `{"name", "mean_ns", "min_ns", "max_ns"}` objects — the machine
//! surface CI parses into the repo's `BENCH_*.json` snapshots.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup cost. The vendored
/// harness always re-runs setup per iteration, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: per-iteration setup is cheap relative to the routine.
    SmallInput,
    /// Large inputs: prefer fewer, bigger batches upstream.
    LargeInput,
    /// Each input must be used exactly once.
    PerIteration,
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a name and a displayable parameter, like upstream's
    /// `name/parameter` convention.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    /// `Some(samples)` of per-iteration nanoseconds after the closure ran.
    samples: Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, running it many times per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let iters = self.calibrate(|| {
            black_box(routine());
        });
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let mut measured = |iters: u64| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            total
        };
        // Calibrate against measured (routine-only) time.
        let mut iters = 1u64;
        loop {
            let elapsed = measured(iters);
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                let per_iter = (elapsed.as_secs_f64() / iters as f64).max(1e-9);
                iters = ((Self::SAMPLE_TARGET.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 24);
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let elapsed = measured(iters);
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Wall-clock budget for one sample.
    const SAMPLE_TARGET: Duration = Duration::from_millis(25);

    /// Doubles the iteration count until a run is long enough to time
    /// reliably, then scales it so one sample hits [`Self::SAMPLE_TARGET`].
    fn calibrate(&self, mut one: impl FnMut()) -> u64 {
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                one();
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                let per_iter = (elapsed.as_secs_f64() / iters as f64).max(1e-9);
                return ((Self::SAMPLE_TARGET.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 24);
            }
            iters *= 2;
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.run(&full, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.run(&full, |b| f(b, input));
        self
    }

    fn run(&mut self, full_name: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.criterion.matches(full_name) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        self.criterion.report(full_name, &bencher.samples);
    }

    /// Ends the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

/// One finished benchmark's summary statistics, in nanoseconds per
/// iteration.
struct Measurement {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Benchmark harness entry point; normally constructed by
/// [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    ran: usize,
    json_out: Option<String>,
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Builds a harness from the process arguments: `--test` switches
    /// to one-iteration smoke mode (what `cargo test` passes to
    /// `harness = false` targets), the first non-flag argument becomes
    /// a substring filter, and other flags are ignored.
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Criterion {
            json_out: std::env::var("OCD_BENCH_JSON").ok(),
            ..Criterion::default()
        };
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') && c.filter.is_none() {
                c.filter = Some(arg);
            }
        }
        c
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let name = id.to_string();
        if !self.matches(&name) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 20,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        self.report(&name, &bencher.samples);
    }

    /// Prints the closing line and, when `OCD_BENCH_JSON` is set,
    /// writes the collected measurements there as a JSON array; called
    /// by [`criterion_main!`].
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("{} benchmarks smoke-tested", self.ran);
        } else {
            println!("{} benchmarks measured", self.ran);
        }
        if let Some(path) = &self.json_out {
            match std::fs::write(path, self.measurements_json()) {
                Ok(()) => println!("measurements written to {path}"),
                Err(e) => eprintln!("OCD_BENCH_JSON: cannot write {path}: {e}"),
            }
        }
    }

    /// The measurements as a JSON array (names contain only identifier
    /// characters and `/`, but quotes and backslashes are escaped
    /// defensively anyway).
    fn measurements_json(&self) -> String {
        let rows: Vec<String> = self
            .measurements
            .iter()
            .map(|m| {
                let name = m.name.replace('\\', "\\\\").replace('"', "\\\"");
                format!(
                    "  {{\"name\": \"{name}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
                     \"max_ns\": {:.1}}}",
                    m.mean_ns, m.min_ns, m.max_ns
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn report(&mut self, name: &str, samples: &[f64]) {
        self.ran += 1;
        if self.test_mode {
            println!("test {name} ... ok");
            return;
        }
        if samples.is_empty() {
            println!("{name:<60} (no measurement)");
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        self.measurements.push(Measurement {
            name: name.to_string(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        });
        println!(
            "{name:<60} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into one group function, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion {
            test_mode: false,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        group.finish();
        assert!(calls > 0);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut calls = 0u64;
        c.bench_function("once", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".to_string()),
            test_mode: true,
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| {
                ran = true;
            });
        });
        assert!(!ran);
        assert_eq!(c.ran, 0);
        c.bench_function("match-me/now", |b| {
            b.iter(|| {
                ran = true;
            });
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("union", 64).to_string(), "union/64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn measurements_serialize_as_json() {
        let mut c = Criterion {
            test_mode: false,
            ..Criterion::default()
        };
        c.measurements.push(Measurement {
            name: "group/bench \"q\"".to_string(),
            mean_ns: 1234.56,
            min_ns: 1000.0,
            max_ns: 2000.0,
        });
        let json = c.measurements_json();
        assert!(json.starts_with("[\n"), "array wrapper: {json}");
        assert!(
            json.contains("\"name\": \"group/bench \\\"q\\\"\""),
            "quotes escaped: {json}"
        );
        assert!(
            json.contains("\"mean_ns\": 1234.6"),
            "stats present: {json}"
        );
    }
}
