//! Vendored, dependency-free stand-in for `serde_json`: JSON text to
//! and from the vendored `serde`'s [`Value`] tree.
//!
//! Covers the workspace's usage: [`to_string`], [`to_string_pretty`],
//! and [`from_str`]. The parser is a strict recursive-descent JSON
//! reader (rejects trailing garbage, duplicate keys pass last-one-wins
//! like upstream).

use serde::de::DeserializeOwned;
use serde::value::Value;
use serde::Serialize;
use std::fmt;

/// Error type for both serialization and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Non-finite floats are unrepresentable in JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&v, None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-indented JSON (two spaces, like
/// upstream's default pretty printer).
///
/// # Errors
///
/// Non-finite floats are unrepresentable in JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&v, Some("  "), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Syntax errors, trailing garbage, or a data shape `T` rejects.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    serde::de::from_value(value).map_err(|e| Error(e.to_string()))
}

fn write_value(
    v: &Value,
    indent: Option<&str>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} is not valid JSON")));
            }
            // Keep integral floats distinguishable from ints like
            // upstream (`1.0` serializes as "1.0").
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => write_composite(
            items.iter(),
            '[',
            ']',
            indent,
            depth,
            out,
            |item, out, ind, d| write_value(item, ind, d, out),
        )?,
        Value::Map(entries) => write_composite(
            entries.iter(),
            '{',
            '}',
            indent,
            depth,
            out,
            |(k, item), out, ind, d| {
                write_json_string(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(item, ind, d, out)
            },
        )?,
    }
    Ok(())
}

fn write_composite<I: ExactSizeIterator>(
    items: I,
    open: char,
    close: char,
    indent: Option<&str>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, &mut String, Option<&str>, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(ind);
            }
        }
        write_item(item, out, indent, depth + 1)?;
    }
    if let (Some(ind), false) = (indent, empty) {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(ind);
        }
    }
    out.push(close);
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            // Last one wins on duplicates, matching upstream.
            if let Some(entry) = entries.iter_mut().find(|(k, _)| *k == key) {
                entry.1 = value;
            } else {
                entries.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Some(digits) = text.strip_prefix('-') {
            // `-0` normalizes to unsigned zero.
            let n = digits
                .parse::<u64>()
                .map_err(|_| self.err("integer overflow"))?;
            if n == 0 {
                Ok(Value::UInt(0))
            } else {
                i64::try_from(n)
                    .map(|v| Value::Int(-v))
                    .map_err(|_| self.err("integer overflow"))
            }
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("integer overflow"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<i64>("-5").unwrap(), -5);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<String>(r#""aA\n""#).unwrap(), "aA\n");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn round_trip_collections() {
        let v = vec![(1u32, vec![2u64, 3]), (4, vec![])];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,[2,3]],[4,[]]]");
        let back: Vec<(u32, Vec<u64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("3 4").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let s = "héllo ☃ \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Escaped non-BMP surrogate pair decodes through \u escapes.
        assert_eq!(
            from_str::<String>(r#""\uD83D\uDE00""#).unwrap(),
            "\u{1F600}"
        );
    }
}
