//! Vendored, dependency-free stand-in for the `rand` crate (0.9 API).
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`random`, `random_range`, `random_bool`), [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — deterministic
//! and high-quality, but **not** stream-compatible with upstream
//! `rand`'s ChaCha12-based `StdRng`. Seeded experiment outputs therefore
//! differ numerically from runs against the real crate; all in-repo
//! tests assert seed-independent invariants or values produced by this
//! generator.

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with
    /// SplitMix64 (every bit of the seed affects the whole state).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = sm.next().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain via
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws `x` uniformly from `[0, span)` by rejection sampling (no
/// modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Closed interval: rescale [0, 1) onto [lo, hi] by
                // nudging the unit sample to include 1.
                let unit = <$t as Standard>::sample_standard(rng);
                let unit = unit / (1.0 - <$t>::EPSILON);
                (lo + (hi - lo) * unit).min(hi)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T` (for floats: `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand::rngs::StdRng`; see the
    /// crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles a uniformly chosen `amount`-element prefix into
        /// place and returns `(prefix, rest)`, like upstream.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.random_range(0..=i));
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                self.swap(i, rng.random_range(i..self.len()));
            }
            self.split_at_mut(amount)
        }
    }
}

/// The traits and types most code wants in scope.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..7);
            assert!((3..7).contains(&x));
            let y: u32 = rng.random_range(1..=1);
            assert_eq!(y, 1);
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g: f64 = rng.random_range(0.25..=1.0);
            assert!((0.25..=1.0).contains(&g));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(rng.random_bool(1.0));
            assert!(!rng.random_bool(0.0));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(7);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let x: usize = dyn_rng.random_range(0..10);
        assert!(x < 10);
        let _ = dyn_rng.random_bool(0.5);
    }
}
