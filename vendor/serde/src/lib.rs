//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the slice of serde it uses. The public surface
//! keeps upstream's shape — `Serialize`/`Deserialize` traits with the
//! same method signatures, `ser::Error`/`de::Error` with `custom`, and
//! re-exported derive macros — but the internal data model is a single
//! self-describing [`value::Value`] tree instead of upstream's visitor
//! architecture. Serializers implement one method
//! ([`Serializer::serialize_value`]); deserializers implement one
//! method ([`Deserializer::take_value`]). `serde_json` (also vendored)
//! is the only transcoder in the workspace, and derived impls go
//! through [`value::Value`], so nothing misses the streaming API.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
