//! The self-describing data model every vendored serializer and
//! deserializer speaks.

use std::fmt;

/// A serialized value: the common currency between `Serialize` impls,
/// `Deserialize` impls, and data formats (JSON in this workspace).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing `Option`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (always `< 0`; non-negative ints use
    /// [`Value::UInt`]).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence (arrays, tuples, `Vec`s).
    Seq(Vec<Value>),
    /// An ordered string-keyed map (structs). Keys are unique.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short noun for error messages ("expected map, got string").
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind())
    }
}
