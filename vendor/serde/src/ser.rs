//! Serialization: types → [`Value`].

use crate::value::Value;
use std::fmt;

/// Errors a [`Serializer`] may raise.
pub trait Error: Sized + fmt::Display {
    /// Builds an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data format that can consume one [`Value`] tree.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;

    /// Consumes the fully built value.
    ///
    /// # Errors
    ///
    /// Whatever the format considers unrepresentable.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can describe itself to any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given format.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's errors.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The error of the in-memory [`ValueSerializer`] (only `custom`
/// messages can occur).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializer that materializes the [`Value`] tree itself — the pivot
/// derived impls and collection impls are written against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Serializes any value to the in-memory data model.
///
/// # Errors
///
/// Propagates `custom` errors raised by `Serialize` impls.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, ValueError> {
    v.serialize(ValueSerializer)
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::UInt(u64::from(*self)))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::UInt(*self as u64))
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = i64::from(*self);
                let value = if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) };
                serializer.serialize_value(value)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self as i64).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(f64::from(*self)))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a, S: Serializer>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Vec<Value>, S::Error> {
    items
        .map(|item| to_value(item).map_err(S::Error::custom))
        .collect()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = seq_to_value::<T, S>(self.iter())?;
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(|e| S::Error::custom(e))?,)+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
