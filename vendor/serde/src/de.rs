//! Deserialization: [`Value`] → types.

use crate::value::Value;
use std::fmt;

/// Errors a [`Deserializer`] may raise.
pub trait Error: Sized + fmt::Display {
    /// Builds an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data format that can produce one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: Error;

    /// Produces the input as a fully parsed value.
    ///
    /// # Errors
    ///
    /// Syntax or I/O errors of the format.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value of `Self`.
    ///
    /// # Errors
    ///
    /// Format errors and data-shape mismatches.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Shorthand for types deserializable with any lifetime (all of them,
/// in this owned-value model).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The error of the in-memory [`ValueDeserializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Deserializer over an already-parsed [`Value`] — the pivot derived
/// impls and collection impls are written against.
#[derive(Debug, Clone)]
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Deserializes a `T` out of an in-memory value.
///
/// # Errors
///
/// Data-shape mismatches reported by `T`'s impl.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

/// Looks up and removes struct field `name` from a parsed map, then
/// deserializes it. The remove keeps repeated lookups O(total), and
/// ignores unknown fields like upstream serde's default.
///
/// A field absent from the map deserializes as [`Value::Null`], which
/// only `Option<T>` accepts (as `None`) — so adding an `Option` field
/// to a struct keeps older serialized data readable (schema-version
/// tolerance), while a missing mandatory field still errors.
///
/// # Errors
///
/// Missing non-optional field, or the field's own deserialization
/// error.
pub fn take_field<T: DeserializeOwned>(
    map: &mut Vec<(String, Value)>,
    struct_name: &str,
    name: &str,
) -> Result<T, ValueError> {
    let Some(idx) = map.iter().position(|(k, _)| k == name) else {
        return from_value(Value::Null)
            .map_err(|_| ValueError(format!("missing field `{name}` of struct {struct_name}")));
    };
    let (_, value) = map.swap_remove(idx);
    from_value(value)
        .map_err(|e| ValueError(format!("field `{name}` of struct {struct_name}: {e}")))
}

fn expected(what: &'static str, got: &Value) -> ValueError {
    ValueError(format!("expected {what}, got {}", got.kind()))
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::UInt(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)))),
                    other => Err(D::Error::custom(expected("unsigned integer", &other))),
                }
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let out_of_range = |v: &dyn fmt::Display| D::Error::custom(format!(
                    "integer {v} out of range for {}", stringify!($t)));
                match deserializer.take_value()? {
                    Value::UInt(v) => <$t>::try_from(v).map_err(|_| out_of_range(&v)),
                    Value::Int(v) => <$t>::try_from(v).map_err(|_| out_of_range(&v)),
                    other => Err(D::Error::custom(expected("integer", &other))),
                }
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(expected("bool", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Float(v) => Ok(v),
            Value::UInt(v) => Ok(v as f64),
            Value::Int(v) => Ok(v as f64),
            other => Err(D::Error::custom(expected("number", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(expected("string", &other))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            value => from_value(value).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|item| from_value(item).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(expected("sequence", &other))),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal, $($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut items = items.into_iter();
                        Ok(($(
                            from_value::<$name>(items.next().expect("length checked"))
                                .map_err(|e| D::Error::custom(e))?,
                        )+))
                    }
                    Value::Seq(items) => Err(D::Error::custom(format!(
                        "expected tuple of {}, got sequence of {}", $len, items.len()))),
                    other => Err(D::Error::custom(expected("sequence", &other))),
                }
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (1, T0)
    (2, T0, T1)
    (3, T0, T1, T2)
    (4, T0, T1, T2, T3)
}
