//! Vendored, dependency-free (beyond the vendored `rand`) stand-in for
//! `proptest`.
//!
//! Covers the subset the workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` attribute, `pat in strategy`
//! arguments, [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`],
//! integer/float range strategies, [`Just`], `prop_map`, and
//! [`collection::vec`]. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name) so failures reproduce
//! across runs; there is no shrinking — the failing inputs are printed
//! instead.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking machinery:
    /// a strategy simply draws a value from the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy over `bool` with a fixed `true` probability.
    #[derive(Debug, Clone)]
    pub struct BoolStrategy(pub f64);

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(self.0)
        }
    }

    /// Tuples of strategies generate tuples of values, left to right.
    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strategy for `Vec<T>` with a length drawn from a range. Built by
    /// [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
        pub(crate) _marker: PhantomData<S>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// `Vec` strategy: elements from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len,
            _marker: PhantomData,
        }
    }
}

pub mod bool {
    /// Uniformly random booleans.
    pub const ANY: crate::strategy::BoolStrategy = crate::strategy::BoolStrategy(0.5);
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test settings; only the case count is configurable.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A test-case failure raised by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The RNG handed to strategies: a `StdRng` seeded from the test
    /// name so each test's case stream is stable across runs yet
    /// decorrelated from other tests'.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic RNG for the named test.
        #[must_use]
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name keeps seeds stable and distinct.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Supports the upstream surface this
/// workspace uses:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in collection::vec(0i8..5, 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                // Render each input before destructuring, so a failure
                // report names the offending case (in lieu of
                // upstream's shrinking) even for tuple patterns.
                let mut inputs = ::std::string::String::new();
                $(
                    let generated = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    inputs.push_str(&::std::format!(
                        "{} = {:?}; ",
                        ::core::stringify!($arg),
                        &generated,
                    ));
                    let $arg = generated;
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    ::core::panic!(
                        "proptest {} failed at case {}/{} with {}\n{}",
                        ::core::stringify!($name),
                        case + 1,
                        config.cases,
                        inputs,
                        err,
                    );
                }
            }
        }
    )*};
}

/// Checks a condition inside a [`proptest!`] body; on failure the case
/// errors (no panic inside the closure, matching upstream semantics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Inequality assertion for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_generate_in_bounds");
        for _ in 0..200 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&y));
            let z = (-4i32..=4).generate(&mut rng);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::deterministic("vec_strategy_respects_length_range");
        let strat = crate::collection::vec(0u8..10, 2..6);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_and_just_compose() {
        let mut rng = TestRng::deterministic("prop_map_and_just_compose");
        let strat = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..20 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn same_name_reproduces_same_stream() {
        let mut a = TestRng::deterministic("stream");
        let mut b = TestRng::deterministic("stream");
        for _ in 0..10 {
            assert_eq!(
                (0u64..1_000_000).generate(&mut a),
                (0u64..1_000_000).generate(&mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_asserts(x in 0u32..50, y in 0u32..50) {
            prop_assert!(x < 50);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x, x + 1, "increment changes {}", x);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(pair in (0u8..4, 0u8..4)) {
            let (a, b) = pair;
            prop_assert!(a < 4 && b < 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
