//! Integration tests for the §6 "open problems" extensions: changing
//! network conditions, churn, physical underlays, content encoding, and
//! the hybrid time/bandwidth objective.

use ocd::core::coding::{simulate_coded_random, CodedInstance, CodedSpec};
use ocd::core::scenario::single_file;
use ocd::core::validate;
use ocd::graph::generate::{classic, paper_random, transit_stub, TransitStubConfig};
use ocd::graph::underlay::Underlay;
use ocd::graph::NodeId;
use ocd::heuristics::dynamics::{Churn, CrossTraffic, LinkOutages};
use ocd::heuristics::{simulate, simulate_dynamic, simulate_underlay, SimConfig, StrategyKind};
use ocd::solver::ip::min_bandwidth_within_factor;
use rand::prelude::*;

#[test]
fn dynamics_runs_validate_against_their_traces() {
    let mut rng = StdRng::seed_from_u64(1);
    let instance = single_file(paper_random(20, &mut rng), 16, 0);
    let models: Vec<Box<dyn ocd::heuristics::NetworkDynamics>> = vec![
        Box::new(CrossTraffic::new(0.3)),
        Box::new(LinkOutages::new(0.15, 0.5)),
        Box::new(Churn::new(0.1, 0.4, vec![0])),
    ];
    for mut model in models {
        for kind in [
            StrategyKind::Random,
            StrategyKind::Local,
            StrategyKind::Global,
        ] {
            let mut strategy = kind.build();
            let mut run_rng = StdRng::seed_from_u64(11);
            let config = SimConfig {
                max_steps: 5_000,
                ..Default::default()
            };
            let outcome = simulate_dynamic(
                &instance,
                strategy.as_mut(),
                model.as_mut(),
                &config,
                &mut run_rng,
            );
            assert!(outcome.report.success, "{kind} under {}", model.name());
            let replay = validate::replay_with_capacities(
                &instance,
                &outcome.report.schedule,
                &outcome.capacity_trace,
            )
            .unwrap_or_else(|e| panic!("{kind}/{}: {e}", model.name()));
            assert!(replay.is_successful());
            // The static replay may legitimately *reject* this schedule
            // if cross-traffic briefly raised a capacity; what must hold
            // is the dynamic validation above.
        }
    }
}

#[test]
fn underlay_inflation_end_to_end() {
    let mut rng = StdRng::seed_from_u64(3);
    let ts = TransitStubConfig::paper_sized(40);
    let physical = transit_stub(&ts, &mut rng);
    let backbone = ts.transit_domains * ts.transit_nodes;
    let hosts: Vec<NodeId> = (backbone..backbone + 10).map(NodeId::new).collect();
    let overlay = classic::complete(10, 4);
    let underlay = Underlay::new(physical.clone(), hosts).unwrap();
    let mapping = underlay.map_overlay(&overlay).unwrap();
    let instance = single_file(overlay, 20, 0);

    let mut s = StrategyKind::Global.build();
    let mut rng1 = StdRng::seed_from_u64(5);
    let pure = simulate(&instance, s.as_mut(), &SimConfig::default(), &mut rng1);
    let mut s2 = StrategyKind::Global.build();
    let mut rng2 = StdRng::seed_from_u64(5);
    let constrained = simulate_underlay(
        &instance,
        s2.as_mut(),
        &physical,
        &mapping,
        &SimConfig::default(),
        &mut rng2,
    );
    assert!(pure.success && constrained.report.success);
    assert!(constrained.report.steps >= pure.steps);
    // The physically admitted schedule is a valid overlay schedule too.
    assert!(validate::replay(&instance, &constrained.report.schedule)
        .unwrap()
        .is_successful());
    // Stress must reflect sharing: a complete overlay over a tree-ish
    // physical net always multiplexes some physical link.
    assert!(mapping.max_stress(physical.edge_count()) > 1);
}

#[test]
fn coding_threshold_model_end_to_end() {
    let mut rng = StdRng::seed_from_u64(4);
    let topology = paper_random(20, &mut rng);
    let uncoded = CodedInstance::single_source(topology.clone(), CodedSpec::new(12, 12), 0);
    let coded = CodedInstance::single_source(topology, CodedSpec::new(12, 18), 0);
    let mut total_plain = 0usize;
    let mut total_coded = 0usize;
    for seed in 0..6 {
        let mut r1 = StdRng::seed_from_u64(seed);
        let a = simulate_coded_random(&uncoded, 10_000, &mut r1);
        let mut r2 = StdRng::seed_from_u64(seed);
        let b = simulate_coded_random(&coded, 10_000, &mut r2);
        assert!(a.success && b.success);
        assert!(a.steps >= uncoded.makespan_lower_bound().expect("reachable receivers"));
        assert!(b.steps >= coded.makespan_lower_bound().expect("reachable receivers"));
        total_plain += a.steps;
        total_coded += b.steps;
    }
    assert!(
        total_coded <= total_plain,
        "redundancy cannot slow the threshold end-game: {total_coded} > {total_plain}"
    );
}

#[test]
fn hybrid_objective_bridges_both_exact_solvers() {
    let instance = ocd::core::scenario::figure_one();
    let mut points = Vec::new();
    for alpha in [1.0, 1.5, 2.0] {
        let (tau, result) =
            min_bandwidth_within_factor(&instance, alpha, &Default::default(), &Default::default())
                .unwrap();
        assert_eq!(tau, 2);
        assert!(validate::replay(&instance, &result.schedule)
            .unwrap()
            .is_successful());
        points.push(result.bandwidth);
    }
    assert_eq!(points, vec![6, 4, 4], "bandwidth relaxes as α grows");
}

#[test]
fn tree_stripe_baseline_integrates() {
    let mut rng = StdRng::seed_from_u64(6);
    let instance = single_file(paper_random(24, &mut rng), 18, 0);
    let mut tree = ocd::heuristics::TreeStripe::new(3);
    let mut run_rng = StdRng::seed_from_u64(1);
    let report = simulate(&instance, &mut tree, &SimConfig::default(), &mut run_rng);
    assert!(report.success);
    let (pruned, _) = ocd::core::prune::prune(&instance, &report.schedule);
    // Tree push never delivers a token twice to the same vertex, so
    // pruning should remove little-to-nothing beyond unused deliveries.
    assert!(pruned.bandwidth() <= report.bandwidth);
    assert!(validate::replay(&instance, &pruned)
        .unwrap()
        .is_successful());
}
