//! Cross-checks between the two exact solvers, the bounds, and the
//! heuristics: everything must sandwich consistently.

use ocd::core::{bounds, prune, TokenSet};
use ocd::prelude::*;
use ocd::solver::ip::pareto_frontier;
use ocd::solver::steiner::serial_steiner_schedule;
use rand::prelude::*;

/// Small random instances with full-universe wants at random vertices.
fn random_small_instance(rng: &mut StdRng) -> Option<Instance> {
    let n = rng.random_range(2..5usize);
    let m = rng.random_range(1..4usize);
    let mut g = DiGraph::with_nodes(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.random_bool(0.6) {
                g.add_edge(g.node(u), g.node(v), rng.random_range(1..3))
                    .unwrap();
            }
        }
    }
    let mut builder = Instance::builder(g, m).have_set(0, TokenSet::full(m));
    let mut any = false;
    for v in 1..n {
        if rng.random_bool(0.7) {
            builder = builder.want_set(v, TokenSet::full(m));
            any = true;
        }
    }
    let instance = builder.build().unwrap();
    (any && instance.is_satisfiable()).then_some(instance)
}

#[test]
fn bnb_ip_bounds_and_heuristics_sandwich() {
    let mut rng = StdRng::seed_from_u64(31337);
    let mut checked = 0;
    while checked < 12 {
        let Some(instance) = random_small_instance(&mut rng) else {
            continue;
        };
        checked += 1;

        // Exact makespan from branch and bound.
        let exact = solve_focd(&instance, &BnbOptions::default()).expect("satisfiable");
        // Admissible bound below it.
        assert!(bounds::makespan_lower_bound(&instance) <= exact.makespan);
        // The IP agrees on the exact feasibility threshold.
        if exact.makespan > 0 {
            assert!(
                min_bandwidth_for_horizon(&instance, exact.makespan - 1, &Default::default())
                    .unwrap()
                    .is_none(),
                "IP found a schedule faster than the B&B optimum"
            );
        }
        let at_opt = min_bandwidth_for_horizon(&instance, exact.makespan, &Default::default())
            .unwrap()
            .expect("IP must agree the optimum horizon is feasible");

        // Bandwidth sandwich: deficiency ≤ IP optimum ≤ Steiner schedule
        // (at a relaxed horizon where the serial schedule fits).
        let steiner = serial_steiner_schedule(&instance).expect("satisfiable");
        let relaxed = min_bandwidth_for_horizon(
            &instance,
            steiner.schedule.makespan().max(exact.makespan),
            &Default::default(),
        )
        .unwrap()
        .expect("feasible at the Steiner horizon");
        let lb = bounds::bandwidth_lower_bound(&instance);
        assert!(lb <= relaxed.bandwidth);
        assert!(relaxed.bandwidth <= steiner.bandwidth);
        assert!(
            relaxed.bandwidth <= at_opt.bandwidth,
            "longer horizon can't cost more"
        );

        // Every heuristic is sandwiched too.
        for kind in StrategyKind::paper_five() {
            let mut strategy = kind.build();
            let mut run_rng = StdRng::seed_from_u64(9);
            let report = simulate(
                &instance,
                strategy.as_mut(),
                &SimConfig::default(),
                &mut run_rng,
            );
            assert!(report.success, "{kind}");
            assert!(
                report.steps >= exact.makespan,
                "{kind} beat the exact optimum"
            );
            let (pruned, _) = prune::prune(&instance, &report.schedule);
            assert!(
                pruned.bandwidth() >= relaxed.bandwidth,
                "{kind} beat exact bandwidth"
            );
        }
    }
}

#[test]
fn pareto_frontier_is_monotone_nonincreasing() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut checked = 0;
    while checked < 6 {
        let Some(instance) = random_small_instance(&mut rng) else {
            continue;
        };
        checked += 1;
        let frontier = pareto_frontier(&instance, 0..=5, &Default::default()).unwrap();
        for pair in frontier.windows(2) {
            assert!(pair[0].0 < pair[1].0, "horizons ascend");
            assert!(
                pair[0].1 >= pair[1].1,
                "more time can never require more bandwidth: {frontier:?}"
            );
        }
    }
}

#[test]
fn figure_one_exactly_matches_paper_caption() {
    let instance = ocd::core::scenario::figure_one();
    let exact = solve_focd(&instance, &BnbOptions::default()).unwrap();
    assert_eq!(exact.makespan, 2);
    let frontier = pareto_frontier(&instance, 1..=4, &Default::default()).unwrap();
    assert_eq!(frontier, vec![(2, 6), (3, 4), (4, 4)]);
}

#[test]
fn gather_then_plan_pays_additive_diameter() {
    // Theorem-4-adjacent sanity: the §4.2 scheme's makespan is the inner
    // plan's plus the (symmetrized) diameter, never multiplicative.
    let mut rng = StdRng::seed_from_u64(5);
    let topology = ocd::graph::generate::paper_random(24, &mut rng);
    let diameter = ocd::graph::algo::diameter(&topology).expect("connected") as usize;
    let instance = ocd::core::scenario::single_file(topology, 12, 0);
    let run = |kind: StrategyKind| {
        let mut strategy = kind.build();
        let mut run_rng = StdRng::seed_from_u64(77);
        simulate(
            &instance,
            strategy.as_mut(),
            &SimConfig::default(),
            &mut run_rng,
        )
    };
    let inner = run(StrategyKind::Global);
    let gathered = run(StrategyKind::GatherThenPlan);
    assert!(inner.success && gathered.success);
    assert_eq!(gathered.steps, inner.steps + diameter);
    assert_eq!(gathered.bandwidth, inner.bandwidth);
}
