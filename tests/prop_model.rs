//! Property-based tests of the core data structures: TokenSet against a
//! BTreeSet model, schedule replay laws, and pruning invariants.

use ocd::core::{prune, validate, Schedule, Token, TokenSet};
use ocd::prelude::{DiGraph, Instance};
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: usize = 180; // straddles several u64 blocks

fn token_vec() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..UNIVERSE, 0..60)
}

fn to_set(tokens: &[usize]) -> TokenSet {
    TokenSet::from_tokens(UNIVERSE, tokens.iter().map(|&i| Token::new(i)))
}

fn to_model(tokens: &[usize]) -> BTreeSet<usize> {
    tokens.iter().copied().collect()
}

proptest! {
    #[test]
    fn tokenset_matches_btreeset_model(a in token_vec(), b in token_vec()) {
        let (sa, sb) = (to_set(&a), to_set(&b));
        let (ma, mb) = (to_model(&a), to_model(&b));
        prop_assert_eq!(sa.len(), ma.len());
        prop_assert_eq!(sa.is_empty(), ma.is_empty());
        let union: BTreeSet<usize> = ma.union(&mb).copied().collect();
        let inter: BTreeSet<usize> = ma.intersection(&mb).copied().collect();
        let diff: BTreeSet<usize> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(
            sa.union(&sb).iter().map(Token::index).collect::<BTreeSet<_>>(),
            union
        );
        prop_assert_eq!(
            sa.intersection(&sb).iter().map(Token::index).collect::<BTreeSet<_>>(),
            inter
        );
        prop_assert_eq!(
            sa.difference(&sb).iter().map(Token::index).collect::<BTreeSet<_>>(),
            diff.clone()
        );
        prop_assert_eq!(sa.difference_len(&sb), diff.len());
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.intersects(&sb), !ma.is_disjoint(&mb));
    }

    #[test]
    fn tokenset_iteration_sorted_dedup(a in token_vec()) {
        let s = to_set(&a);
        let items: Vec<usize> = s.iter().map(Token::index).collect();
        let mut sorted = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(items, sorted);
    }

    #[test]
    fn tokenset_truncate_is_prefix(a in token_vec(), n in 0usize..70) {
        let s = to_set(&a);
        let mut t = s.clone();
        t.truncate(n);
        prop_assert_eq!(t.len(), s.len().min(n));
        let expected: Vec<Token> = s.iter().take(n).collect();
        prop_assert_eq!(t.iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn tokenset_next_cyclic_always_member(a in token_vec(), from in 0usize..UNIVERSE) {
        let s = to_set(&a);
        match s.next_cyclic(Token::new(from)) {
            None => prop_assert!(s.is_empty()),
            Some(t) => {
                prop_assert!(s.contains(t));
                // It is the smallest member ≥ from, or the overall
                // smallest if none.
                let expected = s.iter().find(|t| t.index() >= from).or_else(|| s.first());
                prop_assert_eq!(Some(t), expected);
            }
        }
    }

    #[test]
    fn tokenset_serde_round_trip(a in token_vec()) {
        let s = to_set(&a);
        let json = serde_json::to_string(&s).unwrap();
        let back: TokenSet = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(s, back);
    }
}

/// Builds a random — always valid — schedule on a random symmetric
/// graph by greedily flooding random subsets, then returns everything
/// needed to assert replay/prune laws.
fn arbitrary_valid_run() -> impl Strategy<Value = (Instance, Schedule)> {
    (2usize..7, 1usize..5, 0u64..1000).prop_map(|(n, m, seed)| {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DiGraph::with_nodes(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(0.7) {
                    g.add_edge_symmetric(g.node(u), g.node(v), rng.random_range(1..4))
                        .unwrap();
                }
            }
        }
        // Stitch to guarantee satisfiability of all-want-all.
        let mut builder = Instance::builder(g, m).have_set(0, TokenSet::full(m));
        for v in 1..n {
            if rng.random_bool(0.6) {
                builder = builder.want_set(v, TokenSet::full(m));
            }
        }
        let instance = builder.build().unwrap();

        // Random valid schedule: a few steps of random legal sends.
        let mut possession: Vec<TokenSet> = instance.have_all().to_vec();
        let mut schedule = Schedule::new();
        let steps = rng.random_range(0..6);
        for _ in 0..steps {
            let mut sends = Vec::new();
            let mut arriving: Vec<TokenSet> = possession.clone();
            for e in instance.graph().edge_ids() {
                let arc = instance.graph().edge(e);
                let mut candidates = possession[arc.src.index()].clone();
                if candidates.is_empty() || rng.random_bool(0.3) {
                    continue;
                }
                // Random subset up to capacity (may include re-sends —
                // legal, wasteful, exactly what pruning must handle).
                let mut chosen = TokenSet::new(m);
                let pool: Vec<Token> = candidates.iter().collect();
                for t in pool {
                    if chosen.len() < arc.capacity as usize && rng.random_bool(0.5) {
                        chosen.insert(t);
                    }
                }
                candidates.clear();
                if !chosen.is_empty() {
                    arriving[arc.dst.index()].union_with(&chosen);
                    sends.push((e, chosen));
                }
            }
            possession = arriving;
            schedule.push_step(sends);
        }
        (instance, schedule)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_accepts_constructed_valid_schedules((instance, schedule) in arbitrary_valid_run()) {
        let replay = validate::replay(&instance, &schedule);
        prop_assert!(replay.is_ok(), "constructed-valid schedule rejected: {:?}", replay.err());
    }

    #[test]
    fn prune_preserves_validity_success_and_metrics(
        (instance, schedule) in arbitrary_valid_run()
    ) {
        let before = validate::replay(&instance, &schedule).unwrap();
        let (pruned, stats) = prune::prune(&instance, &schedule);
        prop_assert_eq!(pruned.makespan(), schedule.makespan());
        prop_assert_eq!(pruned.bandwidth() + stats.total_removed(), schedule.bandwidth());
        let after = validate::replay(&instance, &pruned).unwrap();
        prop_assert_eq!(before.is_successful(), after.is_successful());
        // Wanted tokens that arrived still arrive.
        for v in instance.graph().nodes() {
            let want = instance.want(v);
            let got_before = want.intersection(before.possession(schedule.makespan(), v));
            let got_after = want.intersection(after.possession(pruned.makespan(), v));
            prop_assert_eq!(got_before, got_after, "pruning lost a wanted delivery at {}", v);
        }
        // Pruning is idempotent.
        let (pruned2, stats2) = prune::prune(&instance, &pruned);
        prop_assert_eq!(stats2.total_removed(), 0, "pruning not idempotent");
        prop_assert_eq!(pruned2, pruned);
    }

    #[test]
    fn schedule_serde_round_trip((instance, schedule) in arbitrary_valid_run()) {
        let json = serde_json::to_string(&schedule).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &schedule);
        let json = serde_json::to_string(&instance).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &instance);
    }
}
