//! End-to-end integration: scenario generators → heuristic simulation →
//! independent validation → pruning → bounds, across topology families.

use ocd::core::{bounds, prune, validate};
use ocd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_full_pipeline(instance: &Instance, label: &str) {
    assert!(instance.is_satisfiable(), "{label}: unsatisfiable scenario");
    let bw_lb = bounds::bandwidth_lower_bound(instance);
    let ms_lb = bounds::makespan_lower_bound(instance);
    for kind in StrategyKind::all() {
        let mut strategy = kind.build();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let report = simulate(instance, strategy.as_mut(), &SimConfig::default(), &mut rng);
        assert!(report.success, "{label}/{kind}: did not complete");
        let replay = validate::replay(instance, &report.schedule)
            .unwrap_or_else(|e| panic!("{label}/{kind}: invalid schedule: {e}"));
        assert!(
            replay.is_successful(),
            "{label}/{kind}: replay not successful"
        );
        assert!(
            report.bandwidth >= bw_lb,
            "{label}/{kind}: bandwidth {} below lower bound {bw_lb}",
            report.bandwidth
        );
        assert!(
            report.steps >= ms_lb,
            "{label}/{kind}: makespan {} below lower bound {ms_lb}",
            report.steps
        );
        let (pruned, stats) = prune::prune(instance, &report.schedule);
        assert!(pruned.bandwidth() <= report.bandwidth);
        assert_eq!(
            pruned.bandwidth() + stats.total_removed(),
            report.bandwidth,
            "{label}/{kind}: prune accounting"
        );
        assert!(
            pruned.bandwidth() >= bw_lb,
            "{label}/{kind}: pruning broke the bound"
        );
        assert_eq!(pruned.makespan(), report.schedule.makespan());
        let replay = validate::replay(instance, &pruned)
            .unwrap_or_else(|e| panic!("{label}/{kind}: pruned schedule invalid: {e}"));
        assert!(
            replay.is_successful(),
            "{label}/{kind}: pruning broke success"
        );
    }
}

#[test]
fn single_file_on_random_graph() {
    let mut rng = StdRng::seed_from_u64(1);
    let topology = ocd::graph::generate::paper_random(30, &mut rng);
    let instance = ocd::core::scenario::single_file(topology, 20, 0);
    check_full_pipeline(&instance, "single_file/random");
}

#[test]
fn single_file_on_transit_stub() {
    let mut rng = StdRng::seed_from_u64(2);
    let config = ocd::graph::generate::TransitStubConfig::paper_sized(40);
    let topology = ocd::graph::generate::transit_stub(&config, &mut rng);
    let instance = ocd::core::scenario::single_file(topology, 16, 0);
    check_full_pipeline(&instance, "single_file/transit_stub");
}

#[test]
fn receiver_density_mid() {
    let mut rng = StdRng::seed_from_u64(3);
    let topology = ocd::graph::generate::paper_random(40, &mut rng);
    let instance = ocd::core::scenario::receiver_density(topology, 24, 0, 0.4, &mut rng);
    check_full_pipeline(&instance, "receiver_density");
}

#[test]
fn multi_file_partitioned() {
    let mut rng = StdRng::seed_from_u64(4);
    let topology = ocd::graph::generate::paper_random(32, &mut rng);
    let instance = ocd::core::scenario::multi_file(topology, 64, 8, 0);
    check_full_pipeline(&instance, "multi_file");
}

#[test]
fn multi_sender_partitioned() {
    let mut rng = StdRng::seed_from_u64(5);
    let topology = ocd::graph::generate::paper_random(32, &mut rng);
    let instance = ocd::core::scenario::multi_sender(topology, 64, 8, &mut rng);
    check_full_pipeline(&instance, "multi_sender");
}

#[test]
fn classic_topologies() {
    use ocd::graph::generate::classic;
    for (label, g) in [
        ("cycle", classic::cycle(9, 2, true)),
        ("star", classic::star(9, 3, true)),
        ("grid", classic::grid(3, 3, 2)),
        ("tree", classic::balanced_tree(2, 3, 2)),
        ("complete", classic::complete(6, 1)),
    ] {
        let instance = ocd::core::scenario::single_file(g, 6, 0);
        check_full_pipeline(&instance, label);
    }
}

#[test]
fn directed_cycle_works_one_way() {
    // Tokens can only flow clockwise; everything still completes.
    let g = ocd::graph::generate::classic::cycle(7, 2, false);
    let instance = ocd::core::scenario::single_file(g, 5, 0);
    check_full_pipeline(&instance, "directed_cycle");
}

#[test]
fn figure_one_through_all_heuristics() {
    check_full_pipeline(&ocd::core::scenario::figure_one(), "figure_one");
}
