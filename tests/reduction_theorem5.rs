//! Theorem 5 as a property: for random graphs, Dominating-Set(k) holds
//! iff the reduced FOCD instance completes in two timesteps, and the
//! extracted witness always dominates.

use ocd::graph::algo::{dominating_set_exact, dominating_set_greedy, is_dominating_set};
use ocd::prelude::*;
use ocd::solver::bnb::{decide_focd, BnbOptions};
use ocd::solver::reduction::{dominating_set_from_schedule, focd_from_dominating_set};
use proptest::prelude::*;
use rand::prelude::*;

fn random_undirected(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                g.add_edge_symmetric(g.node(u), g.node(v), 1).unwrap();
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reduction_is_an_iff(n in 2usize..6, seed in 0u64..5_000, p in 0.2f64..0.8) {
        let g = random_undirected(n, p, seed);
        let gamma = dominating_set_exact(&g).len();
        for k in 1..n {
            let (instance, layout) = focd_from_dominating_set(&g, k);
            let schedule = decide_focd(&instance, 2, &BnbOptions::default()).unwrap();
            prop_assert_eq!(
                schedule.is_some(),
                gamma <= k,
                "n={} k={} gamma={} seed={}", n, k, gamma, seed
            );
            if let Some(s) = schedule {
                let witness = dominating_set_from_schedule(&layout, &instance, &s);
                prop_assert!(witness.len() <= k, "witness too large");
                prop_assert!(is_dominating_set(&g, &witness), "witness does not dominate");
            }
        }
    }

    #[test]
    fn greedy_dominating_set_is_valid_and_bounded(
        n in 1usize..20, seed in 0u64..5_000, p in 0.0f64..1.0
    ) {
        let g = random_undirected(n, p, seed);
        let greedy = dominating_set_greedy(&g);
        prop_assert!(is_dominating_set(&g, &greedy));
        if n <= 10 {
            let exact = dominating_set_exact(&g);
            prop_assert!(is_dominating_set(&g, &exact));
            prop_assert!(exact.len() <= greedy.len());
            // ln-approximation sanity: greedy ≤ (1 + ln n) · exact.
            let bound = (1.0 + (n as f64).ln()) * exact.len() as f64;
            prop_assert!(greedy.len() as f64 <= bound + 1e-9);
        }
    }
}
