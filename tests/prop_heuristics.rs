//! Property-based tests over the heuristics and solvers on random
//! instances: every strategy always yields a valid, successful,
//! bound-respecting schedule; the exact solvers stay consistent with
//! the bounds and with each other.

use ocd::core::{bounds, validate, TokenSet};
use ocd::prelude::{
    simulate, solve_focd, BnbOptions, DiGraph, Instance, SimConfig, StrategyKind, Token,
};
use proptest::prelude::*;
use rand::prelude::*;

/// Random connected symmetric instance with arbitrary have/want splits
/// (every wanted token is owned somewhere by construction).
fn arbitrary_instance() -> impl Strategy<Value = (Instance, u64)> {
    (3usize..10, 1usize..6, 0u64..10_000).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DiGraph::with_nodes(n);
        // Random ring + chords: connected and symmetric.
        for v in 0..n {
            let u = (v + 1) % n;
            g.add_edge_symmetric(g.node(v), g.node(u), rng.random_range(1..5))
                .unwrap();
        }
        for u in 0..n {
            for v in (u + 2)..n {
                if rng.random_bool(0.25) {
                    g.add_edge_symmetric(g.node(u), g.node(v), rng.random_range(1..5))
                        .unwrap();
                }
            }
        }
        let mut builder = Instance::builder(g, m);
        for t in 0..m {
            // Each token starts at 1..=2 random owners.
            for _ in 0..rng.random_range(1..3) {
                builder = builder.have(rng.random_range(0..n), [Token::new(t)]);
            }
        }
        for v in 0..n {
            let wants: Vec<Token> = (0..m)
                .filter(|_| rng.random_bool(0.5))
                .map(Token::new)
                .collect();
            builder = builder.want(v, wants);
        }
        (builder.build().unwrap(), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_strategy_completes_validates_and_respects_bounds(
        (instance, seed) in arbitrary_instance()
    ) {
        prop_assert!(instance.is_satisfiable(), "ring graphs are connected");
        let bw_lb = bounds::bandwidth_lower_bound(&instance);
        let ms_lb = bounds::makespan_lower_bound(&instance);
        for kind in StrategyKind::all() {
            let mut strategy = kind.build();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let report = simulate(&instance, strategy.as_mut(), &SimConfig::default(), &mut rng);
            prop_assert!(report.success, "{} failed on seed {}", kind, seed);
            let replay = validate::replay(&instance, &report.schedule);
            prop_assert!(replay.is_ok(), "{}: {:?}", kind, replay.err());
            prop_assert!(replay.unwrap().is_successful());
            prop_assert!(report.bandwidth >= bw_lb, "{} broke the bandwidth bound", kind);
            prop_assert!(report.steps >= ms_lb, "{} broke the makespan bound", kind);
        }
    }

    #[test]
    fn simulation_is_deterministic_per_seed((instance, seed) in arbitrary_instance()) {
        for kind in StrategyKind::paper_five() {
            let run = |s: u64| {
                let mut strategy = kind.build();
                let mut rng = StdRng::seed_from_u64(s);
                simulate(&instance, strategy.as_mut(), &SimConfig::default(), &mut rng).schedule
            };
            prop_assert_eq!(run(seed), run(seed), "{} not deterministic", kind);
        }
    }

    #[test]
    fn knowledge_delay_never_breaks_completion((instance, seed) in arbitrary_instance()) {
        for delay in [1usize, 4] {
            let config = SimConfig { knowledge_delay: delay, ..Default::default() };
            let mut strategy = StrategyKind::Local.build();
            let mut rng = StdRng::seed_from_u64(seed);
            let report = simulate(&instance, strategy.as_mut(), &config, &mut rng);
            prop_assert!(report.success, "local failed with delay {} on seed {}", delay, seed);
        }
    }
}

/// Tiny instances where the exact solver is feasible: heuristics never
/// beat it and the decision procedure is consistent at the boundary.
fn tiny_instance() -> impl Strategy<Value = Instance> {
    (2usize..4, 1usize..3, 0u64..10_000).prop_map(|(n, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DiGraph::with_nodes(n);
        for v in 0..n {
            for u in 0..n {
                if u != v && rng.random_bool(0.8) {
                    g.add_edge(g.node(v), g.node(u), rng.random_range(1..3))
                        .unwrap();
                }
            }
        }
        let mut builder = Instance::builder(g, m).have_set(0, TokenSet::full(m));
        for v in 1..n {
            builder = builder.want_set(v, TokenSet::full(m));
        }
        builder.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_solver_is_a_true_minimum(instance in tiny_instance()) {
        if !instance.is_satisfiable() {
            return Ok(());
        }
        let exact = solve_focd(&instance, &BnbOptions::default()).unwrap();
        // Decision procedure agrees at the boundary.
        let opts = BnbOptions::default();
        prop_assert!(ocd::solver::bnb::decide_focd(&instance, exact.makespan, &opts)
            .unwrap()
            .is_some());
        if exact.makespan > 0 {
            prop_assert!(ocd::solver::bnb::decide_focd(&instance, exact.makespan - 1, &opts)
                .unwrap()
                .is_none());
        }
        // The witness schedule is genuinely valid and successful.
        let replay = validate::replay(&instance, &exact.schedule).unwrap();
        prop_assert!(replay.is_successful());
        prop_assert_eq!(exact.schedule.makespan(), exact.makespan);
        // Bounds below, heuristics above.
        prop_assert!(bounds::makespan_lower_bound(&instance) <= exact.makespan);
        let mut strategy = StrategyKind::Global.build();
        let mut rng = StdRng::seed_from_u64(1);
        let report = simulate(&instance, strategy.as_mut(), &SimConfig::default(), &mut rng);
        prop_assert!(report.success);
        prop_assert!(report.steps >= exact.makespan);
    }
}
