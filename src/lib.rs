//! # ocd — The Overlay Network Content Distribution Problem
//!
//! A faithful, self-contained reproduction of *"The Overlay Network
//! Content Distribution Problem"* (Killian, Vrable, Snoeren, Vahdat,
//! Pasquale; UCSD / PODC 2005): the formal token-distribution model, its
//! exact solvers (branch and bound, and the paper's time-indexed integer
//! program on a from-scratch MILP solver), the paper's five on-line
//! heuristics, lower bounds, and the full experiment suite.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! - [`graph`] (`ocd-graph`): digraphs, algorithms, topology generators;
//! - [`core`](mod@core) (`ocd-core`): tokens, instances, schedules,
//!   validation, pruning, bounds, scenarios;
//! - [`lp`] (`ocd-lp`): simplex + branch-and-bound MILP;
//! - [`solver`] (`ocd-solver`): exact FOCD/EOCD, reductions, Steiner
//!   bounds;
//! - [`heuristics`] (`ocd-heuristics`): the simulation engine and
//!   strategies;
//! - [`net`] (`ocd-net`): the asynchronous message-passing swarm
//!   runtime (per-neighbor queues, latency/jitter/loss, crash/restart
//!   fault injection, event traces) whose ideal mode reproduces the
//!   lockstep engine exactly.
//!
//! # Quickstart
//!
//! Distribute a 64-token file from one seed to every node of a random
//! overlay and compare two heuristics:
//!
//! ```
//! use ocd::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let topology = ocd::graph::generate::paper_random(40, &mut rng);
//! let instance = ocd::core::scenario::single_file(topology, 64, 0);
//!
//! let mut results = Vec::new();
//! for kind in [StrategyKind::Random, StrategyKind::Global] {
//!     let mut strategy = kind.build();
//!     let report = simulate(&instance, strategy.as_mut(), &SimConfig::default(), &mut rng);
//!     assert!(report.success);
//!     results.push((kind, report.steps, report.bandwidth));
//! }
//! // Coordinated global knowledge never loses to blind flooding on moves.
//! assert!(results[1].1 <= results[0].1 + 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ocd_core as core;
pub use ocd_graph as graph;
pub use ocd_heuristics as heuristics;
pub use ocd_lp as lp;
pub use ocd_net as net;
pub use ocd_solver as solver;

/// Convenient glob-import of the names almost every user needs.
pub mod prelude {
    pub use ocd_core::{Instance, Move, Schedule, Timestep, Token, TokenSet};
    pub use ocd_graph::{DiGraph, EdgeId, NodeId};
    pub use ocd_heuristics::{simulate, SimConfig, SimReport, Strategy, StrategyKind, WorldView};
    pub use ocd_net::{run_swarm, FaultPlan, NetConfig, NetPolicy, NetReport};
    pub use ocd_solver::bnb::{solve_focd, BnbOptions};
    pub use ocd_solver::ip::min_bandwidth_for_horizon;
}
